//! The simulated-time async executor.
//!
//! Simulation *processes* (the user programs, message proxies, network
//! adapters, DMA engines, ... of the paper's execution-driven simulator) are
//! plain Rust futures. Awaiting a [`SimCtx::delay`] advances the process to
//! a later simulated instant; awaiting a channel, signal or resource from
//! [`crate::sync`] / [`crate::resource`] blocks it until another process
//! acts. The executor is strictly deterministic: events fire in
//! `(time, creation sequence)` order and ready tasks are polled FIFO.
//!
//! # Hot-path design
//!
//! The engine is single-threaded, so nothing on the critical path takes a
//! lock. Tasks live in a *slab* — a `Vec` of slots indexed by the low bits
//! of [`TaskId`], with a generation counter in the high bits so a stale
//! wake for a completed (and recycled) slot is rejected instead of polling
//! an unrelated task. Each task gets exactly one [`Waker`], created at
//! spawn and reused for every poll. The ready queue is a plain
//! `Rc<RefCell<VecDeque<TaskId>>>`; because the `Wake` trait demands
//! `Send + Sync`, wakers reach it through a thread-local registry of weak
//! queue references keyed by a globally unique epoch (see
//! [`TaskWaker`]) rather than owning an `Arc<Mutex<…>>`.
//!
//! The calendar is cancellation-aware: a [`Timer`] can be disarmed through
//! its [`TimerHandle`] (the reliable link layer does this for every
//! acknowledged retransmit timer), and cancelled entries are discarded
//! lazily when they surface at the top of the heap — without advancing
//! simulated time or counting as events, so reproductions stay
//! byte-identical whether or not timers were cancelled.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::{Rc, Weak};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use crate::time::{Dur, SimTime};

/// Identifier of a spawned simulation task: slab index in the low 32 bits,
/// slot generation in the high 32.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(u64);

impl TaskId {
    fn from_parts(index: usize, generation: u32) -> Self {
        TaskId((u64::from(generation) << 32) | index as u64)
    }

    fn index(self) -> usize {
        (self.0 & u64::from(u32::MAX)) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

/// FIFO of tasks that are ready to be polled. Single-threaded: wakers reach
/// it through the thread-local registry below, never across threads.
type ReadyQueue = Rc<RefCell<VecDeque<TaskId>>>;

/// A registry entry: the epoch the slot was (re)assigned under, plus a weak
/// handle to the simulation's ready queue.
type RegistryEntry = (u64, Weak<RefCell<VecDeque<TaskId>>>);

/// Monotonic source of registry epochs. Process-wide so an epoch value is
/// never reused — a waker that outlives its simulation (or crosses threads,
/// where a different registry lives) can only ever no-op.
static NEXT_REGISTRY_EPOCH: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread table of live ready queues: `(epoch, queue)`. Slots of
    /// dropped simulations are recycled for new ones under a fresh epoch.
    static READY_REGISTRY: RefCell<Vec<RegistryEntry>> = const { RefCell::new(Vec::new()) };
}

/// Registers `ready` in this thread's registry, returning its slot and epoch.
fn register_ready_queue(ready: &ReadyQueue) -> (usize, u64) {
    let epoch = NEXT_REGISTRY_EPOCH.fetch_add(1, Ordering::Relaxed);
    READY_REGISTRY.with(|reg| {
        let mut reg = reg.borrow_mut();
        let weak = Rc::downgrade(ready);
        for (slot, entry) in reg.iter_mut().enumerate() {
            if entry.1.strong_count() == 0 {
                *entry = (epoch, weak);
                return (slot, epoch);
            }
        }
        reg.push((epoch, weak));
        (reg.len() - 1, epoch)
    })
}

/// The one waker a task ever gets, created at spawn and reused for every
/// poll. It carries no owning pointer — only the registry coordinates of
/// its simulation's ready queue — so it satisfies the `Send + Sync`
/// contract of [`Wake`] while the queue itself stays single-threaded. A
/// wake after the simulation is gone (epoch mismatch or dead weak) is a
/// silent no-op, and a wake for a completed task is rejected by the slab's
/// generation check when it is popped.
struct TaskWaker {
    slot: usize,
    epoch: u64,
    id: TaskId,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        READY_REGISTRY.with(|reg| {
            let reg = reg.borrow();
            if let Some((epoch, queue)) = reg.get(self.slot) {
                if *epoch == self.epoch {
                    if let Some(queue) = queue.upgrade() {
                        queue.borrow_mut().push_back(self.id);
                    }
                }
            }
        });
    }
}

/// Lifecycle of a [`Timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerState {
    /// Created, not yet polled: no calendar entry exists.
    Idle,
    /// In the calendar, waiting to fire.
    Scheduled,
    /// Reached its deadline and woke its task.
    Fired,
    /// Disarmed via [`TimerHandle::cancel`]; its calendar entry (if any)
    /// will be discarded lazily.
    Cancelled,
}

/// Shared state between a [`Timer`] future, its [`TimerHandle`], and the
/// calendar entry.
struct TimerCell {
    state: Cell<TimerState>,
    waker: RefCell<Option<Waker>>,
}

/// How a [`Timer`] completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerOutcome {
    /// The deadline was reached.
    Fired,
    /// [`TimerHandle::cancel`] disarmed the timer first.
    Cancelled,
}

/// An entry in the event calendar, ordered by `(at, seq)`.
struct TimedWake {
    at: SimTime,
    seq: u64,
    kind: WakeKind,
}

enum WakeKind {
    /// Wake a task directly (plain [`Delay`]).
    Task(Waker),
    /// Fire a cancellable [`Timer`].
    Timer(Rc<TimerCell>),
    /// Run a one-shot callback ([`SimCtx::call_after`]).
    Call(Box<dyn FnOnce()>),
    /// Poll a task directly — the fast path for a [`Delay`] awaited by
    /// the task itself (no waker round trip; stale ids are rejected by
    /// the slab generation check).
    Poll(TaskId),
}

impl TimedWake {
    fn is_cancelled(&self) -> bool {
        match &self.kind {
            WakeKind::Task(_) | WakeKind::Call(_) | WakeKind::Poll(_) => false,
            WakeKind::Timer(cell) => cell.state.get() == TimerState::Cancelled,
        }
    }
}

impl PartialEq for TimedWake {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimedWake {}
impl PartialOrd for TimedWake {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimedWake {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One slab slot. `generation` is bumped when the occupying task completes,
/// invalidating any [`TaskId`] (and queued wakes) that still point here.
#[derive(Default)]
struct TaskSlot {
    generation: u32,
    fut: Option<BoxFuture>,
    /// The task's one reusable waker; behind `Rc` so each poll borrows it
    /// without touching the `Waker`'s atomic reference count.
    waker: Option<Rc<Waker>>,
}

pub(crate) struct Core {
    now: SimTime,
    next_seq: u64,
    calendar: BinaryHeap<Reverse<TimedWake>>,
    ready: ReadyQueue,
    registry_slot: usize,
    registry_epoch: u64,
    slab: Vec<TaskSlot>,
    free: Vec<usize>,
    /// Task currently inside [`Simulation::poll_task`], if any — lets
    /// `Delay` schedule a direct poll instead of a waker round trip.
    current: Option<TaskId>,
    spawned: u64,
    completed: u64,
    events: u64,
    timers_armed: u64,
    timers_cancelled: u64,
    timers_fired: u64,
    calendar_peak: u64,
}

impl Core {
    fn new() -> Self {
        let ready: ReadyQueue = Rc::new(RefCell::new(VecDeque::new()));
        let (registry_slot, registry_epoch) = register_ready_queue(&ready);
        Core {
            now: SimTime::ZERO,
            next_seq: 0,
            calendar: BinaryHeap::new(),
            ready,
            registry_slot,
            registry_epoch,
            slab: Vec::new(),
            free: Vec::new(),
            spawned: 0,
            completed: 0,
            current: None,
            events: 0,
            timers_armed: 0,
            timers_cancelled: 0,
            timers_fired: 0,
            calendar_peak: 0,
        }
    }

    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    /// Registers a wakeup at `at` (clamped to be no earlier than now).
    ///
    /// When `waker` is the cached waker of the task currently being
    /// polled — every ordinary `delay(..).await` — the calendar entry
    /// records the task id itself and the fire skips the waker, ready
    /// queue, and registry machinery entirely.
    pub(crate) fn schedule(&mut self, at: SimTime, waker: &Waker) {
        match self.awaiting_task(waker) {
            Some(id) => self.push_calendar(at, WakeKind::Poll(id)),
            None => self.push_calendar(at, WakeKind::Task(waker.clone())),
        }
    }

    /// The id of the task being polled, if `w` is that task's own waker.
    fn awaiting_task(&self, w: &Waker) -> Option<TaskId> {
        let id = self.current?;
        let slot = self.slab.get(id.index())?;
        if slot.generation != id.generation() {
            return None;
        }
        match &slot.waker {
            Some(tw) if w.will_wake(tw) => Some(id),
            _ => None,
        }
    }

    fn schedule_timer(&mut self, at: SimTime, cell: Rc<TimerCell>) {
        self.push_calendar(at, WakeKind::Timer(cell));
    }

    fn schedule_call(&mut self, at: SimTime, f: Box<dyn FnOnce()>) {
        self.push_calendar(at, WakeKind::Call(f));
    }

    fn push_calendar(&mut self, at: SimTime, kind: WakeKind) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.calendar.push(Reverse(TimedWake { at, seq, kind }));
        self.calendar_peak = self.calendar_peak.max(self.calendar.len() as u64);
    }

    fn spawn(&mut self, fut: BoxFuture) -> TaskId {
        self.spawned += 1;
        let index = self.free.pop().unwrap_or_else(|| {
            self.slab.push(TaskSlot::default());
            self.slab.len() - 1
        });
        let id = TaskId::from_parts(index, self.slab[index].generation);
        let waker = Rc::new(Waker::from(Arc::new(TaskWaker {
            slot: self.registry_slot,
            epoch: self.registry_epoch,
            id,
        })));
        let slot = &mut self.slab[index];
        slot.fut = Some(fut);
        slot.waker = Some(waker);
        self.ready.borrow_mut().push_back(id);
        id
    }
}

/// A cloneable handle onto the running simulation, passed into every process.
///
/// `SimCtx` is how a process reads the clock, sleeps, and spawns further
/// processes. It is cheap to clone and not `Send` (the engine is
/// single-threaded and deterministic).
///
/// # Examples
///
/// ```
/// use mproxy_des::{Dur, Simulation};
///
/// let sim = Simulation::new();
/// let ctx = sim.ctx();
/// sim.spawn(async move {
///     ctx.delay(Dur::from_us(10.0)).await;
///     assert_eq!(ctx.now().as_us(), 10.0);
/// });
/// let report = sim.run();
/// assert!(report.completed_cleanly());
/// ```
#[derive(Clone)]
pub struct SimCtx {
    core: Rc<RefCell<Core>>,
}

impl SimCtx {
    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.core.borrow().now()
    }

    /// Returns a future that completes `d` later in simulated time.
    #[must_use]
    pub fn delay(&self, d: Dur) -> Delay {
        Delay {
            core: Rc::clone(&self.core),
            at: None,
            dur: d,
            scheduled: false,
        }
    }

    /// Returns a future that completes at instant `at` (immediately if in
    /// the past).
    #[must_use]
    pub fn delay_until(&self, at: SimTime) -> Delay {
        Delay {
            core: Rc::clone(&self.core),
            at: Some(at),
            dur: Dur::ZERO,
            scheduled: false,
        }
    }

    /// Returns a cancellable timer that fires `d` later in simulated time.
    ///
    /// Unlike [`SimCtx::delay`], the timer exposes a [`TimerHandle`]
    /// (via [`Timer::handle`]) that any other process can use to disarm
    /// it — the waiting process then completes immediately with
    /// [`TimerOutcome::Cancelled`] instead of sleeping out the full
    /// interval. The reliable link layer uses this to retire retransmit
    /// timers the moment an acknowledgment arrives.
    #[must_use]
    pub fn timer(&self, d: Dur) -> Timer {
        Timer {
            core: Rc::clone(&self.core),
            cell: Rc::new(TimerCell {
                state: Cell::new(TimerState::Idle),
                waker: RefCell::new(None),
            }),
            dur: d,
        }
    }

    /// Spawns a new simulation process.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        self.core.borrow_mut().spawn(Box::pin(fut))
    }

    /// Runs `f` once, `d` later in simulated time.
    ///
    /// A scheduled callback is a single calendar entry — no task slot, no
    /// boxed future, no waker round trip — so it is the cheap way to model
    /// fire-and-forget hardware actions ("this packet lands on the remote
    /// FIFO in 0.8 µs"). The callback runs while the calendar is drained,
    /// before any process woken at the same instant is polled.
    pub fn call_after(&self, d: Dur, f: impl FnOnce() + 'static) {
        let mut core = self.core.borrow_mut();
        let at = core.now + d;
        core.schedule_call(at, Box::new(f));
    }

    /// Yields to any other ready process at the same instant.
    ///
    /// Useful for modelling an agent that re-checks state in the same cycle
    /// after letting concurrent events land.
    #[must_use]
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    pub(crate) fn core(&self) -> &Rc<RefCell<Core>> {
        &self.core
    }

    pub(crate) fn from_core(core: Rc<RefCell<Core>>) -> Self {
        SimCtx { core }
    }
}

impl std::fmt::Debug for SimCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCtx").field("now", &self.now()).finish()
    }
}

/// Future returned by [`SimCtx::delay`] and [`SimCtx::delay_until`].
pub struct Delay {
    core: Rc<RefCell<Core>>,
    /// Resolved absolute deadline; computed on first poll for `delay`.
    at: Option<SimTime>,
    dur: Dur,
    /// Whether the calendar wake-up has been registered.
    scheduled: bool,
}

impl std::fmt::Debug for Delay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Delay")
            .field("at", &self.at)
            .field("dur", &self.dur)
            .finish()
    }
}

impl Future for Delay {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = Pin::into_inner(self);
        let mut core = this.core.borrow_mut();
        let now = core.now;
        match this.at {
            Some(at) if now >= at => Poll::Ready(()),
            Some(at) => {
                // An absolute deadline ([`SimCtx::delay_until`]) arrives
                // here on its first poll: the wake-up must be scheduled
                // just like a relative delay's, or the task sleeps forever.
                if !this.scheduled {
                    this.scheduled = true;
                    core.schedule(at, cx.waker());
                }
                Poll::Pending
            }
            None => {
                let at = now + this.dur;
                this.at = Some(at);
                if now >= at {
                    return Poll::Ready(());
                }
                this.scheduled = true;
                core.schedule(at, cx.waker());
                Poll::Pending
            }
        }
    }
}

/// A cancellable timer future, created by [`SimCtx::timer`].
///
/// Resolves to [`TimerOutcome::Fired`] when the deadline passes, or to
/// [`TimerOutcome::Cancelled`] — immediately — if the timer is disarmed
/// through its [`TimerHandle`] first. The calendar entry of a cancelled
/// timer is discarded lazily and never advances simulated time, so
/// cancelling timers cannot perturb the event order of anything else.
pub struct Timer {
    core: Rc<RefCell<Core>>,
    cell: Rc<TimerCell>,
    dur: Dur,
}

impl Timer {
    /// Returns a handle that can disarm this timer from another process.
    #[must_use]
    pub fn handle(&self) -> TimerHandle {
        TimerHandle {
            core: Rc::clone(&self.core),
            cell: Rc::clone(&self.cell),
        }
    }
}

impl std::fmt::Debug for Timer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Timer")
            .field("dur", &self.dur)
            .field("state", &self.cell.state.get())
            .finish()
    }
}

impl Future for Timer {
    type Output = TimerOutcome;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<TimerOutcome> {
        match self.cell.state.get() {
            TimerState::Fired => Poll::Ready(TimerOutcome::Fired),
            TimerState::Cancelled => Poll::Ready(TimerOutcome::Cancelled),
            TimerState::Idle => {
                let mut core = self.core.borrow_mut();
                core.timers_armed += 1;
                let at = core.now + self.dur;
                if core.now >= at {
                    core.timers_fired += 1;
                    self.cell.state.set(TimerState::Fired);
                    return Poll::Ready(TimerOutcome::Fired);
                }
                self.cell.state.set(TimerState::Scheduled);
                *self.cell.waker.borrow_mut() = Some(cx.waker().clone());
                core.schedule_timer(at, Rc::clone(&self.cell));
                Poll::Pending
            }
            TimerState::Scheduled => {
                *self.cell.waker.borrow_mut() = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Disarms a [`Timer`] from outside the process awaiting it.
///
/// Cancelling is idempotent: once the timer has fired or been cancelled,
/// further [`cancel`](TimerHandle::cancel) calls are no-ops.
#[derive(Clone)]
pub struct TimerHandle {
    core: Rc<RefCell<Core>>,
    cell: Rc<TimerCell>,
}

impl TimerHandle {
    /// Disarms the timer. The process awaiting it is woken at the current
    /// instant and observes [`TimerOutcome::Cancelled`]; the calendar entry
    /// is discarded lazily without firing.
    pub fn cancel(&self) {
        match self.cell.state.get() {
            TimerState::Fired | TimerState::Cancelled => {}
            TimerState::Idle | TimerState::Scheduled => {
                self.cell.state.set(TimerState::Cancelled);
                self.core.borrow_mut().timers_cancelled += 1;
                if let Some(w) = self.cell.waker.borrow_mut().take() {
                    w.wake();
                }
            }
        }
    }

    /// True if the timer has neither fired nor been cancelled yet.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        matches!(
            self.cell.state.get(),
            TimerState::Idle | TimerState::Scheduled
        )
    }
}

impl std::fmt::Debug for TimerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerHandle")
            .field("state", &self.cell.state.get())
            .finish()
    }
}

/// Future returned by [`SimCtx::yield_now`].
#[derive(Debug)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Summary of a completed [`Simulation::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Simulated time when the run stopped.
    pub end: SimTime,
    /// Total processes spawned over the run.
    pub spawned: u64,
    /// Processes that ran to completion.
    pub completed: u64,
    /// Processes still pending when the run stopped (blocked forever unless
    /// the run hit a time limit).
    pub pending: u64,
    /// Calendar events processed. Cancelled timers do not count: their
    /// entries are discarded without firing.
    pub events: u64,
    /// Cancellable timers armed (scheduled into the calendar).
    pub timers_armed: u64,
    /// Timers disarmed via [`TimerHandle::cancel`] before firing.
    pub timers_cancelled: u64,
    /// Timers that reached their deadline and fired.
    pub timers_fired: u64,
    /// Peak simultaneous calendar occupancy over the run.
    pub calendar_peak: u64,
}

impl RunReport {
    /// True if every spawned process ran to completion.
    #[must_use]
    pub fn completed_cleanly(&self) -> bool {
        self.pending == 0
    }
}

/// A deterministic discrete-event simulation.
///
/// # Examples
///
/// Two processes handing a token back and forth through a channel:
///
/// ```
/// use mproxy_des::{Channel, Dur, Simulation};
///
/// let sim = Simulation::new();
/// let ctx = sim.ctx();
/// let ch: Channel<u32> = Channel::unbounded();
///
/// let (tx, rx) = (ch.clone(), ch);
/// let ctx2 = ctx.clone();
/// sim.spawn(async move {
///     ctx2.delay(Dur::from_us(5.0)).await;
///     tx.try_send(42).unwrap();
/// });
/// sim.spawn(async move {
///     let v = rx.recv().await.unwrap();
///     assert_eq!(v, 42);
///     assert_eq!(ctx.now().as_us(), 5.0);
/// });
/// assert!(sim.run().completed_cleanly());
/// ```
pub struct Simulation {
    core: Rc<RefCell<Core>>,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation at time zero.
    #[must_use]
    pub fn new() -> Self {
        Simulation {
            core: Rc::new(RefCell::new(Core::new())),
        }
    }

    /// Returns a handle for spawning processes and reading the clock.
    #[must_use]
    pub fn ctx(&self) -> SimCtx {
        SimCtx {
            core: Rc::clone(&self.core),
        }
    }

    /// Spawns a root process.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        self.core.borrow_mut().spawn(Box::pin(fut))
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.core.borrow().now()
    }

    /// Runs until no process can make further progress.
    pub fn run(&self) -> RunReport {
        self.run_inner(None)
    }

    /// Runs until no process can make further progress or simulated time
    /// would pass `limit`, whichever comes first.
    pub fn run_until(&self, limit: SimTime) -> RunReport {
        self.run_inner(Some(limit))
    }

    fn run_inner(&self, limit: Option<SimTime>) -> RunReport {
        let ready = Rc::clone(&self.core.borrow().ready);
        loop {
            // Drain every task that is ready at the current instant. The
            // borrow is released before polling: the task re-enters the
            // queue through its `SimCtx` and wakers.
            loop {
                let next = ready.borrow_mut().pop_front();
                match next {
                    Some(id) => self.poll_task(id),
                    None => break,
                }
            }
            // Advance the clock to the next calendar event, lazily
            // discarding cancelled timers: they neither advance time nor
            // count as events, so cancellation is invisible to everything
            // that still runs.
            let wake = {
                let mut core = self.core.borrow_mut();
                loop {
                    match core.calendar.peek() {
                        Some(Reverse(tw)) if tw.is_cancelled() => {
                            core.calendar.pop();
                        }
                        Some(Reverse(tw)) if limit.is_none_or(|l| tw.at <= l) => {
                            let Reverse(tw) = core.calendar.pop().expect("peeked");
                            core.now = tw.at;
                            core.events += 1;
                            if let WakeKind::Timer(_) = &tw.kind {
                                core.timers_fired += 1;
                            }
                            break Some(tw.kind);
                        }
                        _ => break None,
                    }
                }
            };
            match wake {
                Some(WakeKind::Task(w)) => w.wake(),
                Some(WakeKind::Poll(id)) => self.poll_task(id),
                Some(WakeKind::Call(f)) => f(),
                Some(WakeKind::Timer(cell)) => {
                    cell.state.set(TimerState::Fired);
                    if let Some(w) = cell.waker.borrow_mut().take() {
                        w.wake();
                    }
                }
                None => break,
            }
        }
        let core = self.core.borrow();
        RunReport {
            end: core.now,
            spawned: core.spawned,
            completed: core.completed,
            pending: core.spawned - core.completed,
            events: core.events,
            timers_armed: core.timers_armed,
            timers_cancelled: core.timers_cancelled,
            timers_fired: core.timers_fired,
            calendar_peak: core.calendar_peak,
        }
    }

    fn poll_task(&self, id: TaskId) {
        // Take the future out of its slot so the core is not borrowed while
        // polling (the task will re-borrow it through its `SimCtx`). The
        // generation check rejects wakes for slots that have been recycled.
        let (mut fut, waker) = {
            let mut core = self.core.borrow_mut();
            let index = id.index();
            let Some(slot) = core.slab.get_mut(index) else {
                return;
            };
            if slot.generation != id.generation() {
                // Stale wake: the task completed and its slot was reused.
                return;
            }
            let Some(fut) = slot.fut.take() else {
                // Duplicate wake in the same drain, or (impossible
                // single-threaded) already being polled; ignore.
                return;
            };
            let waker = Rc::clone(slot.waker.as_ref().expect("live task has a waker"));
            core.current = Some(id);
            (fut, waker)
        };
        let mut cx = Context::from_waker(&waker);
        let poll = fut.as_mut().poll(&mut cx);
        let mut core = self.core.borrow_mut();
        core.current = None;
        match poll {
            Poll::Ready(()) => {
                let index = id.index();
                let slot = &mut core.slab[index];
                slot.generation = slot.generation.wrapping_add(1);
                slot.waker = None;
                core.free.push(index);
                core.completed += 1;
            }
            Poll::Pending => {
                core.slab[id.index()].fut = Some(fut);
            }
        }
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn empty_simulation_ends_at_zero() {
        let sim = Simulation::new();
        let r = sim.run();
        assert_eq!(r.end, SimTime::ZERO);
        assert!(r.completed_cleanly());
        assert_eq!(r.events, 0);
    }

    #[test]
    fn delay_advances_time() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        sim.spawn(async move {
            ctx.delay(Dur::from_us(3.5)).await;
            ctx.delay(Dur::from_us(1.5)).await;
            assert_eq!(ctx.now().as_us(), 5.0);
        });
        let r = sim.run();
        assert_eq!(r.end.as_us(), 5.0);
        assert!(r.completed_cleanly());
    }

    #[test]
    fn delay_until_schedules_its_own_wakeup() {
        // Regression: an absolute-deadline delay must register a calendar
        // event on first poll; it used to return Pending and sleep forever.
        let sim = Simulation::new();
        let ctx = sim.ctx();
        sim.spawn(async move {
            ctx.delay_until(SimTime::ZERO + Dur::from_us(40.0)).await;
            assert_eq!(ctx.now().as_us(), 40.0);
            // A deadline already in the past completes without moving time.
            ctx.delay_until(SimTime::ZERO + Dur::from_us(10.0)).await;
            assert_eq!(ctx.now().as_us(), 40.0);
        });
        let r = sim.run();
        assert_eq!(r.end.as_us(), 40.0);
        assert!(r.completed_cleanly());
    }

    #[test]
    fn events_fire_in_time_order_with_fifo_ties() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (i, us) in [(0u32, 5.0), (1, 2.0), (2, 5.0), (3, 1.0)] {
            let ctx = ctx.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                ctx.delay(Dur::from_us(us)).await;
                order.borrow_mut().push(i);
            });
        }
        sim.run();
        // Ties (tasks 0 and 2, both at 5 us) resolve in spawn order.
        assert_eq!(*order.borrow(), vec![3, 1, 0, 2]);
    }

    #[test]
    fn spawned_tasks_run_at_spawn_time() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let hit = Rc::new(Cell::new(0.0f64));
        let hit2 = Rc::clone(&hit);
        sim.spawn(async move {
            ctx.delay(Dur::from_us(7.0)).await;
            let inner_ctx = ctx.clone();
            ctx.spawn(async move {
                hit2.set(inner_ctx.now().as_us());
            });
        });
        sim.run();
        assert_eq!(hit.get(), 7.0);
    }

    #[test]
    fn run_until_respects_limit() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        sim.spawn(async move {
            ctx.delay(Dur::from_us(100.0)).await;
        });
        let r = sim.run_until(SimTime::from_ns(10_000));
        assert_eq!(r.pending, 1);
        assert_eq!(r.end.as_us(), 0.0);
        // Resuming finishes the task.
        let r = sim.run();
        assert!(r.completed_cleanly());
        assert_eq!(r.end.as_us(), 100.0);
    }

    #[test]
    fn zero_delay_completes_without_calendar_event() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        sim.spawn(async move {
            ctx.delay(Dur::ZERO).await;
        });
        let r = sim.run();
        assert!(r.completed_cleanly());
        assert_eq!(r.events, 0);
    }

    #[test]
    fn yield_now_interleaves_same_instant_tasks() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let order = Rc::new(RefCell::new(Vec::new()));
        let (o1, o2) = (Rc::clone(&order), Rc::clone(&order));
        let ctx1 = ctx.clone();
        sim.spawn(async move {
            o1.borrow_mut().push("a1");
            ctx1.yield_now().await;
            o1.borrow_mut().push("a2");
        });
        sim.spawn(async move {
            o2.borrow_mut().push("b1");
            ctx.yield_now().await;
            o2.borrow_mut().push("b2");
        });
        sim.run();
        assert_eq!(*order.borrow(), vec!["a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn deadlocked_task_reported_pending() {
        let sim = Simulation::new();
        let ch: crate::Channel<u8> = crate::Channel::unbounded();
        sim.spawn(async move {
            let _ = ch.recv().await; // nobody ever sends
        });
        let r = sim.run();
        assert_eq!(r.pending, 1);
        assert!(!r.completed_cleanly());
    }

    #[test]
    fn determinism_two_identical_runs() {
        fn run_once() -> (u64, u64, Vec<u32>) {
            let sim = Simulation::new();
            let ctx = sim.ctx();
            let log = Rc::new(RefCell::new(Vec::new()));
            for i in 0..20u32 {
                let ctx = ctx.clone();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    ctx.delay(Dur::from_ns(u64::from(i % 7) * 100)).await;
                    log.borrow_mut().push(i);
                    ctx.delay(Dur::from_ns(u64::from(i % 3) * 50)).await;
                    log.borrow_mut().push(i + 100);
                });
            }
            let r = sim.run();
            let log = Rc::try_unwrap(log).unwrap().into_inner();
            (r.end.as_ns(), r.events, log)
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn slab_recycles_slots_with_fresh_generations() {
        let sim = Simulation::new();
        let a = sim.spawn(async {});
        sim.run();
        let b = sim.spawn(async {});
        // Slot index is reused, but the generation differs so the ids stay
        // distinct and stale wakes cannot reach the new task.
        assert_ne!(a, b);
        let r = sim.run();
        assert!(r.completed_cleanly());
        assert_eq!(r.spawned, 2);
    }

    #[test]
    fn timer_fires_at_deadline() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        sim.spawn(async move {
            let outcome = ctx.timer(Dur::from_us(25.0)).await;
            assert_eq!(outcome, TimerOutcome::Fired);
            assert_eq!(ctx.now().as_us(), 25.0);
        });
        let r = sim.run();
        assert!(r.completed_cleanly());
        assert_eq!(r.timers_armed, 1);
        assert_eq!(r.timers_fired, 1);
        assert_eq!(r.timers_cancelled, 0);
        assert_eq!(r.events, 1);
    }

    #[test]
    fn zero_timer_fires_without_calendar_event() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        sim.spawn(async move {
            assert_eq!(ctx.timer(Dur::ZERO).await, TimerOutcome::Fired);
        });
        let r = sim.run();
        assert!(r.completed_cleanly());
        assert_eq!(r.events, 0);
        assert_eq!(r.timers_fired, 1);
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let handle = Rc::new(RefCell::new(None));
        let fired = Rc::new(Cell::new(false));
        let (h1, f1) = (Rc::clone(&handle), Rc::clone(&fired));
        let ctx1 = ctx.clone();
        sim.spawn(async move {
            let t = ctx1.timer(Dur::from_us(100.0));
            *h1.borrow_mut() = Some(t.handle());
            if t.await == TimerOutcome::Fired {
                f1.set(true);
            }
            // Woken at the instant of cancellation, not the deadline.
            assert_eq!(ctx1.now().as_us(), 10.0);
        });
        sim.spawn(async move {
            ctx.delay(Dur::from_us(10.0)).await;
            handle.borrow().as_ref().unwrap().cancel();
        });
        let r = sim.run();
        assert!(r.completed_cleanly());
        assert!(!fired.get(), "cancelled timer must never fire");
        assert_eq!(r.timers_armed, 1);
        assert_eq!(r.timers_cancelled, 1);
        assert_eq!(r.timers_fired, 0);
        // Only the canceller's delay is a calendar event: the dead timer
        // entry is discarded without firing and the run ends at 10 us,
        // not the timer's 100 us deadline.
        assert_eq!(r.events, 1);
        assert_eq!(r.end.as_us(), 10.0);
    }

    #[test]
    fn double_cancel_is_a_noop() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let done = Rc::new(Cell::new(false));
        let done2 = Rc::clone(&done);
        sim.spawn(async move {
            let t = ctx.timer(Dur::from_us(50.0));
            let h = t.handle();
            ctx.spawn(async move {
                h.cancel();
                h.cancel();
                assert!(!h.is_armed());
            });
            assert_eq!(t.await, TimerOutcome::Cancelled);
            done2.set(true);
        });
        let r = sim.run();
        assert!(r.completed_cleanly());
        assert!(done.get());
        assert_eq!(r.timers_cancelled, 1, "second cancel must not re-count");
    }

    #[test]
    fn cancel_after_fire_is_a_noop() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        sim.spawn(async move {
            let t = ctx.timer(Dur::from_us(5.0));
            let h = t.handle();
            assert_eq!(t.await, TimerOutcome::Fired);
            assert!(!h.is_armed());
            h.cancel();
        });
        let r = sim.run();
        assert!(r.completed_cleanly());
        assert_eq!(r.timers_fired, 1);
        assert_eq!(r.timers_cancelled, 0);
    }

    #[test]
    fn cancelling_one_timer_leaves_others_untouched() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let order = Rc::new(RefCell::new(Vec::new()));
        let handle = Rc::new(RefCell::new(None));
        for (name, us) in [("a", 10.0), ("b", 20.0), ("c", 30.0)] {
            let ctx = ctx.clone();
            let order = Rc::clone(&order);
            let handle = Rc::clone(&handle);
            sim.spawn(async move {
                let t = ctx.timer(Dur::from_us(us));
                if name == "b" {
                    *handle.borrow_mut() = Some(t.handle());
                }
                let outcome = t.await;
                order.borrow_mut().push((name, outcome));
            });
        }
        let ctx2 = sim.ctx();
        sim.spawn(async move {
            ctx2.delay(Dur::from_us(1.0)).await;
            handle.borrow().as_ref().unwrap().cancel();
        });
        let r = sim.run();
        assert!(r.completed_cleanly());
        assert_eq!(
            *order.borrow(),
            vec![
                ("b", TimerOutcome::Cancelled),
                ("a", TimerOutcome::Fired),
                ("c", TimerOutcome::Fired),
            ]
        );
        assert_eq!(r.timers_armed, 3);
        assert_eq!(r.timers_fired, 2);
        assert_eq!(r.timers_cancelled, 1);
    }

    #[test]
    fn stale_waker_from_dropped_simulation_is_harmless() {
        // A waker can outlive its simulation (e.g. held by external code).
        // Waking it must be a silent no-op, and must not perturb a newer
        // simulation that recycled the registry slot.
        let stolen = Rc::new(RefCell::new(None::<Waker>));
        {
            let sim = Simulation::new();
            let thief = Rc::clone(&stolen);
            sim.spawn(async move {
                std::future::poll_fn(move |cx| {
                    *thief.borrow_mut() = Some(cx.waker().clone());
                    Poll::Ready(())
                })
                .await;
            });
            sim.run();
        }
        let sim = Simulation::new();
        let ctx = sim.ctx();
        sim.spawn(async move {
            ctx.delay(Dur::from_us(1.0)).await;
        });
        stolen.borrow().as_ref().unwrap().wake_by_ref();
        let r = sim.run();
        assert!(r.completed_cleanly());
        assert_eq!(r.spawned, 1);
    }
}
