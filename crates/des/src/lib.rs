//! # mproxy-des — deterministic discrete-event simulation engine
//!
//! The simulation substrate for the HPCA'97 *message proxies* reproduction.
//! The paper builds its comparative evaluation on CSIM, a process-oriented
//! discrete-event library; this crate is the equivalent in safe Rust:
//!
//! * [`Simulation`] — an event calendar plus a **simulated-time async
//!   executor**: every simulated agent (user process, message proxy,
//!   network adapter, DMA engine, switch) is an ordinary Rust future.
//! * [`SimCtx::delay`] — advance a process through simulated time.
//! * [`Channel`], [`Signal`], [`Counter`] — deterministic FIFO queues,
//!   one-shot completions and threshold counters connecting processes.
//! * [`Resource`] — capacity-limited servers with FIFO queueing and
//!   utilisation statistics (node-internal contention, Table 6).
//! * [`Tally`], [`TimeWeighted`] — statistics accumulators.
//!
//! Runs are strictly deterministic: events fire in `(time, sequence)`
//! order, ready tasks poll FIFO, and no wall-clock or OS randomness is
//! consulted anywhere.
//!
//! # Examples
//!
//! An M/D/1-ish station: jobs arrive every 4 µs and need 3 µs of service.
//!
//! ```
//! use mproxy_des::{Dur, Resource, Simulation};
//!
//! let sim = Simulation::new();
//! let ctx = sim.ctx();
//! let server = Resource::new(&ctx, "server", 1);
//! for i in 0..10 {
//!     let ctx = ctx.clone();
//!     let server = server.clone();
//!     sim.spawn(async move {
//!         ctx.delay(Dur::from_us(4.0 * i as f64)).await; // arrival
//!         server.hold(Dur::from_us(3.0)).await;          // service
//!     });
//! }
//! let report = sim.run();
//! assert!(report.completed_cleanly());
//! assert_eq!(report.end.as_us(), 39.0);
//! assert!((server.utilization(sim.now()) - 30.0 / 39.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executor;
mod resource;
mod stats;
mod sync;
mod time;

pub use executor::{Delay, RunReport, SimCtx, Simulation, TaskId, Timer, TimerHandle, TimerOutcome, YieldNow};
pub use resource::{Acquire, Resource, ResourceGuard};
pub use stats::{Tally, TimeWeighted};
pub use sync::{Channel, Counter, CounterWait, Recv, Send, Signal, SignalWait, TrySendError};
pub use time::{Dur, SimTime};
