//! Inter-process synchronisation primitives for simulation tasks.
//!
//! These mirror the shared-memory structures of the paper: [`Channel`]
//! models FIFO queues (command queues, network FIFOs), [`Signal`] models a
//! one-shot completion, and [`Counter`] models the lsync/rsync-style
//! synchronisation flags and Split-C split-phase counters.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Error returned by [`Channel::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// The channel has been closed.
    Closed(T),
}

impl<T> TrySendError<T> {
    /// Recovers the value that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Closed(v) => v,
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "channel is full"),
            TrySendError::Closed(_) => write!(f, "channel is closed"),
        }
    }
}

/// A parked waiter: the registration key of its future plus the waker to
/// call. Keys let a dropped future remove (or hand over) exactly its own
/// entry — see [`WaiterQueue`].
type Waiter = (u64, Waker);

/// FIFO of parked waiters. Each waiting future owns a unique key; dropping
/// the future unregisters it, so abandoned waits can neither leak wakers
/// nor swallow a wake meant for a live waiter.
#[derive(Default)]
struct WaiterQueue {
    q: VecDeque<Waiter>,
}

impl WaiterQueue {
    /// Parks (or re-parks) waiter `key`. A waiter that is still queued has
    /// its waker refreshed in place, keeping its FIFO position; one that
    /// was popped by a wake re-registers at the back, as a fresh wait.
    fn park(&mut self, key: u64, waker: &Waker) {
        match self.q.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1.clone_from(waker),
            None => self.q.push_back((key, waker.clone())),
        }
    }

    /// Wakes the longest-parked waiter, if any.
    fn wake_one(&mut self) {
        if let Some((_, w)) = self.q.pop_front() {
            w.wake();
        }
    }

    fn wake_all(&mut self) {
        for (_, w) in self.q.drain(..) {
            w.wake();
        }
    }

    /// Removes waiter `key`. Returns false if it was not queued — meaning
    /// a wake was already consumed on its behalf.
    fn unpark(&mut self, key: u64) -> bool {
        let before = self.q.len();
        self.q.retain(|(k, _)| *k != key);
        self.q.len() != before
    }
}

struct ChanState<T> {
    buf: VecDeque<T>,
    capacity: Option<usize>,
    closed: bool,
    recv_wakers: WaiterQueue,
    send_wakers: WaiterQueue,
    /// Source of registration keys for both waiter queues.
    next_waiter: u64,
    /// High-water mark of queue occupancy, for contention statistics.
    max_len: usize,
    total_sent: u64,
}

impl<T> ChanState<T> {
    fn wake_one_receiver(&mut self) {
        self.recv_wakers.wake_one();
    }
    fn wake_one_sender(&mut self) {
        self.send_wakers.wake_one();
    }
    fn wake_all(&mut self) {
        self.recv_wakers.wake_all();
        self.send_wakers.wake_all();
    }
}

/// A deterministic FIFO channel between simulation processes.
///
/// Cloning yields another handle to the same channel; the channel closes
/// when [`Channel::close`] is called (all handles observe it).
///
/// # Examples
///
/// ```
/// use mproxy_des::{Channel, Simulation};
///
/// let sim = Simulation::new();
/// let ch = Channel::unbounded();
/// let rx = ch.clone();
/// sim.spawn(async move {
///     ch.try_send("hello").unwrap();
///     ch.close();
/// });
/// sim.spawn(async move {
///     assert_eq!(rx.recv().await, Some("hello"));
///     assert_eq!(rx.recv().await, None);
/// });
/// assert!(sim.run().completed_cleanly());
/// ```
pub struct Channel<T> {
    state: Rc<RefCell<ChanState<T>>>,
}

impl<T> Clone for Channel<T> {
    fn clone(&self) -> Self {
        Channel {
            state: Rc::clone(&self.state),
        }
    }
}

impl<T> Default for Channel<T> {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl<T> Channel<T> {
    /// Creates a channel with no capacity limit.
    #[must_use]
    pub fn unbounded() -> Self {
        Self::with_state(None)
    }

    /// Creates a channel that holds at most `capacity` queued items;
    /// [`Channel::send`] blocks while full.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (rendezvous channels are not supported).
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "bounded channel capacity must be > 0");
        Self::with_state(Some(capacity))
    }

    fn with_state(capacity: Option<usize>) -> Self {
        Channel {
            state: Rc::new(RefCell::new(ChanState {
                buf: VecDeque::new(),
                capacity,
                closed: false,
                recv_wakers: WaiterQueue::default(),
                send_wakers: WaiterQueue::default(),
                next_waiter: 0,
                max_len: 0,
                total_sent: 0,
            })),
        }
    }

    /// Attempts to enqueue without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`TrySendError::Full`] if bounded and at capacity, or
    /// [`TrySendError::Closed`] if the channel is closed.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut s = self.state.borrow_mut();
        if s.closed {
            return Err(TrySendError::Closed(value));
        }
        if let Some(cap) = s.capacity {
            if s.buf.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        s.buf.push_back(value);
        s.total_sent += 1;
        s.max_len = s.max_len.max(s.buf.len());
        s.wake_one_receiver();
        Ok(())
    }

    /// Enqueues, waiting for space if the channel is bounded and full.
    ///
    /// Resolves to `false` if the channel closed before the value could be
    /// enqueued (the value is dropped in that case).
    pub fn send(&self, value: T) -> Send<'_, T> {
        Send {
            chan: self,
            value: Some(value),
            key: None,
        }
    }

    /// Dequeues, waiting until an item is available.
    ///
    /// Resolves to `None` once the channel is closed *and* drained.
    pub fn recv(&self) -> Recv<'_, T> {
        Recv {
            chan: self,
            key: None,
        }
    }

    /// Attempts to dequeue without blocking.
    pub fn try_recv(&self) -> Option<T> {
        let mut s = self.state.borrow_mut();
        let v = s.buf.pop_front();
        if v.is_some() {
            s.wake_one_sender();
        }
        v
    }

    /// Closes the channel, waking all blocked processes.
    pub fn close(&self) {
        let mut s = self.state.borrow_mut();
        s.closed = true;
        s.wake_all();
    }

    /// Number of queued items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.borrow().buf.len()
    }

    /// True if no items are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if [`Channel::close`] has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.state.borrow().closed
    }

    /// Largest queue occupancy observed so far.
    #[must_use]
    pub fn max_len(&self) -> usize {
        self.state.borrow().max_len
    }

    /// Total items ever enqueued.
    #[must_use]
    pub fn total_sent(&self) -> u64 {
        self.state.borrow().total_sent
    }
}

impl<T> fmt::Debug for Channel<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Channel")
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

/// Future returned by [`Channel::send`].
pub struct Send<'a, T> {
    chan: &'a Channel<T>,
    value: Option<T>,
    key: Option<u64>,
}

impl<T> Unpin for Send<'_, T> {}

impl<T> Future for Send<'_, T> {
    type Output = bool;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<bool> {
        let this = self.get_mut();
        let value = this.value.take().expect("polled Send after completion");
        match this.chan.try_send(value) {
            Ok(()) => {
                this.finish();
                Poll::Ready(true)
            }
            Err(TrySendError::Closed(_)) => {
                this.finish();
                Poll::Ready(false)
            }
            Err(TrySendError::Full(v)) => {
                this.value = Some(v);
                let mut s = this.chan.state.borrow_mut();
                let key = *this.key.get_or_insert_with(|| {
                    let k = s.next_waiter;
                    s.next_waiter += 1;
                    k
                });
                s.send_wakers.park(key, cx.waker());
                Poll::Pending
            }
        }
    }
}

impl<T> Send<'_, T> {
    /// Retires this future's registration on completion, so its `Drop`
    /// does not mistake the consumed wake for an abandoned one.
    fn finish(&mut self) {
        if let Some(k) = self.key.take() {
            self.chan.state.borrow_mut().send_wakers.unpark(k);
        }
    }
}

impl<T> Drop for Send<'_, T> {
    fn drop(&mut self) {
        let Some(k) = self.key.take() else { return };
        let mut s = self.chan.state.borrow_mut();
        if !s.send_wakers.unpark(k) {
            // A wake was consumed for this future but never acted on. If
            // there is still room (or the channel closed), hand the wake
            // to the next parked sender so it is not stranded.
            let has_room = s
                .capacity
                .is_none_or(|cap| s.buf.len() < cap);
            if has_room || s.closed {
                s.wake_one_sender();
            }
        }
    }
}

/// Future returned by [`Channel::recv`].
pub struct Recv<'a, T> {
    chan: &'a Channel<T>,
    key: Option<u64>,
}

impl<T> Unpin for Recv<'_, T> {}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let this = self.get_mut();
        let mut s = this.chan.state.borrow_mut();
        if let Some(v) = s.buf.pop_front() {
            s.wake_one_sender();
            if let Some(k) = this.key.take() {
                s.recv_wakers.unpark(k);
            }
            return Poll::Ready(Some(v));
        }
        if s.closed {
            if let Some(k) = this.key.take() {
                s.recv_wakers.unpark(k);
            }
            return Poll::Ready(None);
        }
        let key = *this.key.get_or_insert_with(|| {
            let k = s.next_waiter;
            s.next_waiter += 1;
            k
        });
        s.recv_wakers.park(key, cx.waker());
        Poll::Pending
    }
}

impl<T> Drop for Recv<'_, T> {
    fn drop(&mut self) {
        let Some(k) = self.key.take() else { return };
        let mut s = self.chan.state.borrow_mut();
        if !s.recv_wakers.unpark(k) {
            // A wake was consumed for this future but never acted on. If
            // an item (or the close) is still there to observe, hand the
            // wake to the next parked receiver so it is not stranded.
            if !s.buf.is_empty() || s.closed {
                s.wake_one_receiver();
            }
        }
    }
}

struct SignalState<T> {
    value: Option<T>,
    wakers: Vec<Waiter>,
    next_waiter: u64,
}

/// A one-shot broadcast value: set once, awaited by any number of processes.
///
/// Models completion notifications (e.g. a GET reply landing).
///
/// # Examples
///
/// ```
/// use mproxy_des::{Dur, Signal, Simulation};
///
/// let sim = Simulation::new();
/// let ctx = sim.ctx();
/// let sig = Signal::new();
/// let waiter = sig.clone();
/// sim.spawn(async move {
///     assert_eq!(waiter.wait().await, 7);
/// });
/// sim.spawn(async move {
///     ctx.delay(Dur::from_us(1.0)).await;
///     sig.set(7);
/// });
/// assert!(sim.run().completed_cleanly());
/// ```
pub struct Signal<T> {
    state: Rc<RefCell<SignalState<T>>>,
}

impl<T> Clone for Signal<T> {
    fn clone(&self) -> Self {
        Signal {
            state: Rc::clone(&self.state),
        }
    }
}

impl<T> Default for Signal<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Signal<T> {
    /// Creates an unset signal.
    #[must_use]
    pub fn new() -> Self {
        Signal {
            state: Rc::new(RefCell::new(SignalState {
                value: None,
                wakers: Vec::new(),
                next_waiter: 0,
            })),
        }
    }

    /// Sets the value and wakes all waiters.
    ///
    /// # Panics
    ///
    /// Panics if the signal was already set — a signal is one-shot.
    pub fn set(&self, value: T) {
        let mut s = self.state.borrow_mut();
        assert!(s.value.is_none(), "Signal::set called twice");
        s.value = Some(value);
        for (_, w) in s.wakers.drain(..) {
            w.wake();
        }
    }

    /// True once [`Signal::set`] has been called.
    #[must_use]
    pub fn is_set(&self) -> bool {
        self.state.borrow().value.is_some()
    }
}

impl<T: Clone> Signal<T> {
    /// Waits for the signal, resolving to a clone of the value.
    pub fn wait(&self) -> SignalWait<T> {
        SignalWait {
            state: Rc::clone(&self.state),
            key: None,
        }
    }

    /// Returns the value if already set.
    #[must_use]
    pub fn get(&self) -> Option<T> {
        self.state.borrow().value.clone()
    }
}

impl<T> fmt::Debug for Signal<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Signal")
            .field("set", &self.is_set())
            .finish()
    }
}

/// Future returned by [`Signal::wait`].
pub struct SignalWait<T> {
    state: Rc<RefCell<SignalState<T>>>,
    key: Option<u64>,
}

impl<T> Unpin for SignalWait<T> {}

impl<T: Clone> Future for SignalWait<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let this = self.get_mut();
        let mut s = this.state.borrow_mut();
        match &s.value {
            Some(v) => {
                let v = v.clone();
                this.key = None; // set() drained the list; nothing to remove
                Poll::Ready(v)
            }
            None => {
                let key = match this.key {
                    Some(k) => k,
                    None => {
                        let k = s.next_waiter;
                        s.next_waiter += 1;
                        this.key = Some(k);
                        k
                    }
                };
                match s.wakers.iter_mut().find(|(k, _)| *k == key) {
                    Some(slot) => slot.1.clone_from(cx.waker()),
                    None => s.wakers.push((key, cx.waker().clone())),
                }
                Poll::Pending
            }
        }
    }
}

impl<T> Drop for SignalWait<T> {
    fn drop(&mut self) {
        // A set() broadcast wakes everyone and leaves the value readable,
        // so an abandoned wait only has to remove its own parked waker.
        if let Some(k) = self.key.take() {
            self.state.borrow_mut().wakers.retain(|(id, _)| *id != k);
        }
    }
}

struct CounterState {
    count: u64,
    /// `(key, target, waker)` per parked waiter.
    waiters: Vec<(u64, u64, Waker)>,
    next_waiter: u64,
}

/// A monotonically increasing counter with threshold waits.
///
/// This is the shape of the paper's synchronisation flags: an agent
/// (proxy, adapter, interrupt handler) *increments*; user code *waits* for
/// a target count, which supports split-phase operation batches.
///
/// # Examples
///
/// ```
/// use mproxy_des::{Counter, Simulation};
///
/// let sim = Simulation::new();
/// let done = Counter::new();
/// let waiter = done.clone();
/// sim.spawn(async move {
///     waiter.wait_for(2).await;
/// });
/// sim.spawn(async move {
///     done.add(1);
///     done.add(1);
/// });
/// assert!(sim.run().completed_cleanly());
/// ```
#[derive(Clone)]
pub struct Counter {
    state: Rc<RefCell<CounterState>>,
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter {
            state: Rc::new(RefCell::new(CounterState {
                count: 0,
                waiters: Vec::new(),
                next_waiter: 0,
            })),
        }
    }

    /// Adds `n`, waking any waiter whose threshold is now met.
    pub fn add(&self, n: u64) {
        let mut s = self.state.borrow_mut();
        s.count += n;
        let count = s.count;
        let mut i = 0;
        while i < s.waiters.len() {
            if s.waiters[i].1 <= count {
                let (_, _, w) = s.waiters.swap_remove(i);
                w.wake();
            } else {
                i += 1;
            }
        }
    }

    /// Increments by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.state.borrow().count
    }

    /// Waits until the counter reaches at least `target`.
    pub fn wait_for(&self, target: u64) -> CounterWait {
        CounterWait {
            state: Rc::clone(&self.state),
            target,
            key: None,
        }
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Counter")
            .field("count", &self.get())
            .finish()
    }
}

/// Future returned by [`Counter::wait_for`].
pub struct CounterWait {
    state: Rc<RefCell<CounterState>>,
    target: u64,
    key: Option<u64>,
}

impl Unpin for CounterWait {}

impl Future for CounterWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        let mut s = this.state.borrow_mut();
        if s.count >= this.target {
            if let Some(k) = this.key.take() {
                s.waiters.retain(|(id, _, _)| *id != k);
            }
            Poll::Ready(())
        } else {
            let key = match this.key {
                Some(k) => k,
                None => {
                    let k = s.next_waiter;
                    s.next_waiter += 1;
                    this.key = Some(k);
                    k
                }
            };
            match s.waiters.iter_mut().find(|(k, _, _)| *k == key) {
                Some(slot) => slot.2.clone_from(cx.waker()),
                None => s.waiters.push((key, this.target, cx.waker().clone())),
            }
            Poll::Pending
        }
    }
}

impl Drop for CounterWait {
    fn drop(&mut self) {
        // The counter is monotonic and a met threshold stays met, so an
        // abandoned wait only has to remove its own parked waker.
        if let Some(k) = self.key.take() {
            self.state.borrow_mut().waiters.retain(|(id, _, _)| *id != k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dur, Simulation};
    use std::cell::Cell;

    #[test]
    fn bounded_channel_blocks_sender() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let ch = Channel::bounded(1);
        let rx = ch.clone();
        let sent_second_at = Rc::new(Cell::new(0.0));
        let probe = Rc::clone(&sent_second_at);
        sim.spawn({
            let ctx = ctx.clone();
            async move {
                assert!(ch.send(1).await);
                assert!(ch.send(2).await); // blocks until receiver drains
                probe.set(ctx.now().as_us());
            }
        });
        sim.spawn(async move {
            ctx.delay(Dur::from_us(4.0)).await;
            assert_eq!(rx.recv().await, Some(1));
            assert_eq!(rx.recv().await, Some(2));
        });
        assert!(sim.run().completed_cleanly());
        assert_eq!(sent_second_at.get(), 4.0);
    }

    #[test]
    fn try_send_full_and_closed() {
        let ch = Channel::bounded(1);
        ch.try_send(1).unwrap();
        assert!(matches!(ch.try_send(2), Err(TrySendError::Full(2))));
        ch.close();
        assert!(matches!(ch.try_send(3), Err(TrySendError::Closed(3))));
        assert_eq!(ch.try_recv(), Some(1));
        assert_eq!(ch.try_recv(), None);
    }

    #[test]
    fn recv_drains_after_close() {
        let sim = Simulation::new();
        let ch = Channel::unbounded();
        ch.try_send(10).unwrap();
        ch.try_send(20).unwrap();
        ch.close();
        sim.spawn(async move {
            assert_eq!(ch.recv().await, Some(10));
            assert_eq!(ch.recv().await, Some(20));
            assert_eq!(ch.recv().await, None);
        });
        assert!(sim.run().completed_cleanly());
    }

    #[test]
    fn channel_preserves_fifo_order_across_waiters() {
        let sim = Simulation::new();
        let ch = Channel::unbounded();
        let out = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let ch = ch.clone();
            let out = Rc::clone(&out);
            sim.spawn(async move {
                while let Some(v) = ch.recv().await {
                    out.borrow_mut().push(v);
                }
            });
        }
        let ctx = sim.ctx();
        sim.spawn(async move {
            for v in 0..9 {
                ch.try_send(v).unwrap();
                ctx.delay(Dur::from_ns(1)).await;
            }
            ch.close();
        });
        sim.run();
        assert_eq!(*out.borrow(), (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn channel_stats_track_occupancy() {
        let ch = Channel::unbounded();
        ch.try_send(1).unwrap();
        ch.try_send(2).unwrap();
        ch.try_recv();
        ch.try_send(3).unwrap();
        assert_eq!(ch.max_len(), 2);
        assert_eq!(ch.total_sent(), 3);
        assert_eq!(ch.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be > 0")]
    fn zero_capacity_rejected() {
        let _ = Channel::<u8>::bounded(0);
    }

    #[test]
    fn signal_wakes_multiple_waiters() {
        let sim = Simulation::new();
        let sig = Signal::new();
        let n = Rc::new(Cell::new(0));
        for _ in 0..3 {
            let sig = sig.clone();
            let n = Rc::clone(&n);
            sim.spawn(async move {
                assert_eq!(sig.wait().await, 99);
                n.set(n.get() + 1);
            });
        }
        sim.spawn(async move { sig.set(99) });
        assert!(sim.run().completed_cleanly());
        assert_eq!(n.get(), 3);
    }

    #[test]
    fn signal_wait_after_set_is_immediate() {
        let sim = Simulation::new();
        let sig = Signal::new();
        sig.set(5u8);
        assert_eq!(sig.get(), Some(5));
        sim.spawn(async move {
            assert_eq!(sig.wait().await, 5);
        });
        assert!(sim.run().completed_cleanly());
    }

    #[test]
    #[should_panic(expected = "set called twice")]
    fn signal_double_set_panics() {
        let sig = Signal::new();
        sig.set(1);
        sig.set(2);
    }

    #[test]
    fn counter_threshold_waits() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let c = Counter::new();
        let times = Rc::new(RefCell::new(Vec::new()));
        for target in [1u64, 3] {
            let c = c.clone();
            let ctx = ctx.clone();
            let times = Rc::clone(&times);
            sim.spawn(async move {
                c.wait_for(target).await;
                times.borrow_mut().push((target, ctx.now().as_us()));
            });
        }
        let ctx2 = sim.ctx();
        sim.spawn(async move {
            for _ in 0..3 {
                ctx2.delay(Dur::from_us(1.0)).await;
                c.incr();
            }
        });
        assert!(sim.run().completed_cleanly());
        assert_eq!(*times.borrow(), vec![(1, 1.0), (3, 3.0)]);
    }

    /// Polls `fut` exactly once (registering its waker) and abandons it.
    async fn poll_once_and_drop<F: Future + Unpin>(mut fut: F) {
        std::future::poll_fn(|cx| {
            let _ = Pin::new(&mut fut).poll(cx);
            Poll::Ready(())
        })
        .await;
        drop(fut);
    }

    #[test]
    fn dropped_recv_does_not_swallow_wakes() {
        // Task A parks a recv waker, abandons the future, and moves on.
        // Before keyed registration, its stale waker stayed first in the
        // queue and consumed the wake for the item — task B slept forever.
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let ch: Channel<u8> = Channel::unbounded();
        let (rx_a, rx_b, tx) = (ch.clone(), ch.clone(), ch);
        let got = Rc::new(Cell::new(0u8));
        let got2 = Rc::clone(&got);
        sim.spawn(async move {
            poll_once_and_drop(rx_a.recv()).await;
        });
        sim.spawn(async move {
            got2.set(rx_b.recv().await.unwrap());
        });
        sim.spawn(async move {
            ctx.delay(Dur::from_us(1.0)).await;
            tx.try_send(42).unwrap();
        });
        let r = sim.run();
        assert!(r.completed_cleanly(), "receiver starved by a stale waker");
        assert_eq!(got.get(), 42);
    }

    #[test]
    fn dropped_send_does_not_swallow_wakes() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let ch: Channel<u8> = Channel::bounded(1);
        ch.try_send(0).unwrap(); // full from the start
        let (tx_a, tx_b, rx) = (ch.clone(), ch.clone(), ch);
        sim.spawn(async move {
            poll_once_and_drop(tx_a.send(1)).await;
        });
        sim.spawn(async move {
            assert!(tx_b.send(2).await);
        });
        sim.spawn(async move {
            ctx.delay(Dur::from_us(1.0)).await;
            assert_eq!(rx.try_recv(), Some(0));
            ctx.delay(Dur::from_us(1.0)).await;
            assert_eq!(rx.try_recv(), Some(2));
        });
        let r = sim.run();
        assert!(r.completed_cleanly(), "sender starved by a stale waker");
    }

    #[test]
    fn recv_woken_then_dropped_passes_the_wake_on() {
        // Task A is woken for an item but abandons its recv before acting
        // on it; the wake must be handed to the next parked receiver.
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let ch: Channel<u8> = Channel::unbounded();
        let (rx_a, rx_b, tx) = (ch.clone(), ch.clone(), ch);
        let got = Rc::new(Cell::new(0u8));
        let got2 = Rc::clone(&got);
        let ctx_a = ctx.clone();
        sim.spawn(async move {
            let mut fut = rx_a.recv();
            std::future::poll_fn(|cx| {
                let _ = Pin::new(&mut fut).poll(cx);
                Poll::Ready(())
            })
            .await;
            // Parked; the send below consumes our wake while we sleep
            // elsewhere. Dropping the future must pass the wake to B.
            ctx_a.delay(Dur::from_us(2.0)).await;
            drop(fut);
        });
        sim.spawn(async move {
            got2.set(rx_b.recv().await.unwrap());
        });
        sim.spawn(async move {
            ctx.delay(Dur::from_us(1.0)).await;
            tx.try_send(9).unwrap();
        });
        let r = sim.run();
        assert!(r.completed_cleanly(), "wake was not passed on");
        assert_eq!(got.get(), 9);
    }

    #[test]
    fn dropped_signal_and_counter_waits_unregister() {
        let sim = Simulation::new();
        let sig: Signal<u8> = Signal::new();
        let c = Counter::new();
        let (sig2, c2) = (sig.clone(), c.clone());
        sim.spawn(async move {
            poll_once_and_drop(sig2.wait()).await;
            poll_once_and_drop(c2.wait_for(5)).await;
        });
        assert!(sim.run().completed_cleanly());
        assert!(sig.state.borrow().wakers.is_empty(), "leaked signal waker");
        assert!(c.state.borrow().waiters.is_empty(), "leaked counter waiter");
        // The primitives still work after the abandoned waits.
        let sim = Simulation::new();
        sim.spawn(async move {
            sig.set(1);
            c.add(5);
        });
        assert!(sim.run().completed_cleanly());
    }

    #[test]
    fn repolling_a_parked_recv_does_not_duplicate_its_waker() {
        let sim = Simulation::new();
        let ch: Channel<u8> = Channel::unbounded();
        let rx = ch.clone();
        sim.spawn(async move {
            let mut fut = rx.recv();
            // Poll the same pending future twice before abandoning it;
            // only one registration may exist.
            std::future::poll_fn(|cx| {
                let _ = Pin::new(&mut fut).poll(cx);
                let _ = Pin::new(&mut fut).poll(cx);
                Poll::Ready(())
            })
            .await;
            assert_eq!(rx.state.borrow().recv_wakers.q.len(), 1);
            drop(fut);
            assert_eq!(rx.state.borrow().recv_wakers.q.len(), 0);
        });
        assert!(sim.run().completed_cleanly());
    }

    #[test]
    fn counter_wait_for_zero_is_immediate() {
        let sim = Simulation::new();
        let c = Counter::new();
        sim.spawn(async move { c.wait_for(0).await });
        assert!(sim.run().completed_cleanly());
    }
}
