//! Simulated time.
//!
//! The engine keeps time as an integer number of *nanoseconds* since the
//! start of the simulation. Nanosecond resolution comfortably covers the
//! paper's microsecond-scale primitive costs (the finest constant in the
//! HPCA'97 model is 0.1 µs) while keeping arithmetic exact and ordering
//! total, which the deterministic event calendar relies on.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured from the start of the simulation.
///
/// # Examples
///
/// ```
/// use mproxy_des::{SimTime, Dur};
///
/// let t = SimTime::ZERO + Dur::from_us(2.5);
/// assert_eq!(t.as_us(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time.
///
/// # Examples
///
/// ```
/// use mproxy_des::Dur;
///
/// let d = Dur::from_us(1.5) + Dur::from_ns(500);
/// assert_eq!(d.as_ns(), 2_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since simulation start.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the instant as integer nanoseconds.
    #[must_use]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the instant as (possibly fractional) microseconds.
    #[must_use]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the instant as (possibly fractional) milliseconds.
    #[must_use]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the instant as (possibly fractional) seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// The empty span.
    pub const ZERO: Dur = Dur(0);

    /// Creates a span from integer nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        Dur(ns)
    }

    /// Creates a span from (possibly fractional) microseconds.
    ///
    /// Negative or non-finite values are clamped to zero.
    #[must_use]
    pub fn from_us(us: f64) -> Self {
        if us.is_finite() && us > 0.0 {
            Dur((us * 1_000.0).round() as u64)
        } else {
            Dur(0)
        }
    }

    /// Creates a span from (possibly fractional) milliseconds.
    ///
    /// Negative or non-finite values are clamped to zero.
    #[must_use]
    pub fn from_ms(ms: f64) -> Self {
        Dur::from_us(ms * 1_000.0)
    }

    /// Returns the span as integer nanoseconds.
    #[must_use]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the span as (possibly fractional) microseconds.
    #[must_use]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the span as (possibly fractional) seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns true if the span is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative float, rounding to nanoseconds.
    #[must_use]
    pub fn mul_f64(self, k: f64) -> Dur {
        debug_assert!(k.is_finite() && k >= 0.0, "scale factor must be >= 0");
        Dur((self.0 as f64 * k).round() as u64)
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for SimTime {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Dur) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Dur;
    fn sub(self, rhs: SimTime) -> Dur {
        self.since(rhs)
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_ns(1_500);
        assert_eq!(t.as_us(), 1.5);
        assert_eq!(t + Dur::from_us(0.5), SimTime::from_ns(2_000));
        assert_eq!((t - SimTime::from_ns(500)).as_ns(), 1_000);
    }

    #[test]
    fn subtraction_saturates() {
        assert_eq!(SimTime::from_ns(5).since(SimTime::from_ns(9)), Dur::ZERO);
        assert_eq!(Dur::from_ns(3) - Dur::from_ns(10), Dur::ZERO);
    }

    #[test]
    fn from_us_clamps_garbage() {
        assert_eq!(Dur::from_us(-1.0), Dur::ZERO);
        assert_eq!(Dur::from_us(f64::NAN), Dur::ZERO);
        assert_eq!(Dur::from_us(f64::INFINITY), Dur::ZERO);
    }

    #[test]
    fn mul_div_scale() {
        assert_eq!(Dur::from_ns(100) * 3, Dur::from_ns(300));
        assert_eq!(Dur::from_ns(100) / 4, Dur::from_ns(25));
        assert_eq!(Dur::from_ns(100).mul_f64(2.5), Dur::from_ns(250));
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(format!("{}", Dur::from_us(3.25)), "3.250us");
        assert_eq!(format!("{}", SimTime::from_ns(750)), "0.750us");
    }

    #[test]
    fn sum_of_durations() {
        let total: Dur = [Dur::from_ns(1), Dur::from_ns(2), Dur::from_ns(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Dur::from_ns(6));
    }
}
