//! Per-proxy flight recorder: a fixed-size lock-free ring of compact
//! (16-byte) trace events, overwriting oldest-first, dumpable at any
//! time without stopping the writer.
//!
//! Each slot is two `AtomicU64` words:
//!
//! ```text
//! w0: event timestamp, ns (runtime: since cluster start; sim: sim time)
//! w1: kind(8) | a(16) | b(32) | lap_tag(8)
//! ```
//!
//! Writers claim an absolute slot number with `head.fetch_add` (so
//! multiple writers — proxy thread, supervisor, watchdog — may share a
//! node's ring), tombstone the slot, write the timestamp, then publish
//! `w1` with `Release`. `lap_tag` is the low byte of the claim's lap
//! count (`claim >> log2(cap)`); a reader that observes a stale or
//! tombstoned tag skips the slot. Readers double-read `w1` around the
//! `w0` read (seqlock-style) so a concurrent overwrite can only cause a
//! dropped event, never a torn one. See DESIGN.md §Observability for
//! the full memory-ordering contract.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! event_kinds {
    ($($variant:ident = $val:literal => $name:literal,)+) => {
        /// Compact trace event kinds. Discriminants are the on-ring
        /// byte encoding; `0` is reserved as the tombstone.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(u8)]
        pub enum EventKind {
            $(
                #[allow(missing_docs)]
                $variant = $val,
            )+
        }

        impl EventKind {
            /// Stable name used by the Chrome-trace exporter.
            pub const fn name(self) -> &'static str {
                match self {
                    $(EventKind::$variant => $name,)+
                }
            }

            fn from_u8(v: u8) -> Option<EventKind> {
                match v {
                    $($val => Some(EventKind::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

event_kinds! {
    Enqueue = 1 => "enqueue",
    Drain = 2 => "drain",
    Send = 3 => "send",
    Retransmit = 4 => "retransmit",
    AckIn = 5 => "ack_in",
    NackIn = 6 => "nack_in",
    DedupDrop = 7 => "dedup_drop",
    Shed = 8 => "shed",
    Hello = 9 => "hello",
    EpochBump = 10 => "epoch_bump",
    Kill = 11 => "kill",
    Respawn = 12 => "respawn",
    SatEnter = 13 => "saturation_enter",
    SatExit = 14 => "saturation_exit",
    CreditStall = 15 => "credit_stall",
    Stall = 16 => "stall",
    FaultDrop = 17 => "fault_drop",
    FaultDup = 18 => "fault_dup",
    FaultCorrupt = 19 => "fault_corrupt",
    MigrateOut = 20 => "migrate_out",
    MigrateIn = 21 => "migrate_in",
    ShardScale = 22 => "shard_scale",
}

/// A decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanosecond timestamp (engine-defined epoch).
    pub t_ns: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Small argument (peer id, epoch, ...).
    pub a: u16,
    /// Large argument (sequence number, count, ...).
    pub b: u32,
}

struct Slot {
    w0: AtomicU64,
    w1: AtomicU64,
}

/// Fixed-capacity lossy trace ring. See module docs.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    head: AtomicU64,
    cap_bits: u32,
}

impl FlightRecorder {
    /// A ring holding the last `cap` events (rounded up to a power of
    /// two, minimum 16).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(16).next_power_of_two();
        FlightRecorder {
            slots: (0..cap)
                .map(|_| Slot {
                    w0: AtomicU64::new(0),
                    w1: AtomicU64::new(0),
                })
                .collect(),
            head: AtomicU64::new(0),
            cap_bits: cap.trailing_zeros(),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    #[inline]
    fn tag_for(&self, claim: u64) -> u64 {
        // Lap count, low byte; +1 so lap 0 never collides with the
        // zero-initialised (tombstone) slots.
        ((claim >> self.cap_bits) + 1) & 0xff
    }

    /// Record one event. Lock-free; ~3 atomic stores + 1 fetch_add.
    #[inline]
    pub fn record(&self, t_ns: u64, kind: EventKind, a: u16, b: u32) {
        let claim = self.head.fetch_add(1, Ordering::Relaxed);
        let idx = (claim & ((1u64 << self.cap_bits) - 1)) as usize;
        let slot = &self.slots[idx];
        // Tombstone first so a racing reader never pairs the new
        // timestamp with the previous lap's payload.
        slot.w1.store(0, Ordering::Release);
        slot.w0.store(t_ns, Ordering::Relaxed);
        let w1 = ((kind as u64) << 56)
            | ((a as u64) << 40)
            | ((b as u64) << 8)
            | self.tag_for(claim);
        slot.w1.store(w1, Ordering::Release);
    }

    /// Dump the surviving events, oldest first. Safe to call while
    /// writers are active: events overwritten (or mid-write) during the
    /// scan are skipped, never torn.
    pub fn dump(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for claim in start..head {
            let idx = (claim & (cap - 1)) as usize;
            let slot = &self.slots[idx];
            let v1 = slot.w1.load(Ordering::Acquire);
            if v1 & 0xff != self.tag_for(claim) {
                continue; // stale lap, tombstone, or mid-write
            }
            let t_ns = slot.w0.load(Ordering::Relaxed);
            // Seqlock-style validation: if w1 changed while we read w0,
            // the pair may be torn — drop it.
            if slot.w1.load(Ordering::Acquire) != v1 {
                continue;
            }
            let Some(kind) = EventKind::from_u8((v1 >> 56) as u8) else {
                continue;
            };
            out.push(TraceEvent {
                t_ns,
                kind,
                a: (v1 >> 40) as u16,
                b: (v1 >> 8) as u32,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_dumps_in_order() {
        let r = FlightRecorder::new(16);
        for i in 0..10u32 {
            r.record(i as u64 * 100, EventKind::Send, 1, i);
        }
        let ev = r.dump();
        assert_eq!(ev.len(), 10);
        for (i, e) in ev.iter().enumerate() {
            assert_eq!(e.kind, EventKind::Send);
            assert_eq!(e.b, i as u32);
            assert_eq!(e.t_ns, i as u64 * 100);
        }
    }

    #[test]
    fn wraps_keeping_newest() {
        let r = FlightRecorder::new(16);
        for i in 0..100u32 {
            r.record(i as u64, EventKind::Drain, 0, i);
        }
        let ev = r.dump();
        assert_eq!(ev.len(), 16);
        assert_eq!(ev.first().unwrap().b, 84);
        assert_eq!(ev.last().unwrap().b, 99);
    }

    #[test]
    fn concurrent_writers_never_tear() {
        use std::sync::Arc;
        let r = Arc::new(FlightRecorder::new(64));
        let writers: Vec<_> = (0..4u16)
            .map(|w| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..20_000u32 {
                        r.record(u64::from(i), EventKind::Retransmit, w, i);
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            for e in r.dump() {
                // A torn event would pair a timestamp with another
                // event's payload; every valid event has t_ns == b.
                assert_eq!(e.t_ns, u64::from(e.b), "torn event {e:?}");
                assert!(e.a < 4);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(r.recorded(), 80_000);
    }
}
