//! Static metric ids and cache-padded atomic counter sets.
//!
//! The same [`Ctr`] ids are used by the threaded runtime (`mproxy-rt`)
//! and the discrete-event simulator (`mproxy` / `mproxy-des`) so that
//! A/B comparisons between the two engines line up column-for-column.
//!
//! A [`CounterSet`] is a fixed array of `AtomicU64` cells, one per id,
//! each padded to its own cache line so two proxies (or a proxy and a
//! snapshot reader) never false-share. All increments are `Relaxed`;
//! snapshots are `Relaxed` reads and therefore never stop the world.
//! The contract is monotonicity per cell, not cross-cell atomicity: a
//! snapshot taken mid-flight may observe `msgs_in` from after an
//! `ops_applied` it does not yet include. Invariant checks must only
//! be applied to quiesced clusters (after `shutdown()` / `run()`).

use std::sync::atomic::{AtomicU64, Ordering};

/// Pad to 128 bytes: two 64-byte lines, covering adjacent-line
/// prefetchers on common x86 parts.
#[repr(align(128))]
struct CachePadded<T>(T);

macro_rules! counters {
    ($($variant:ident => $name:literal,)+) => {
        /// Static counter ids shared by the simulator and the runtime.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Ctr {
            $(
                #[allow(missing_docs)]
                $variant,
            )+
        }

        impl Ctr {
            /// Number of counter ids.
            pub const COUNT: usize = [$(Ctr::$variant),+].len();
            /// Every id, in declaration order (== index order).
            pub const ALL: [Ctr; Ctr::COUNT] = [$(Ctr::$variant),+];

            /// Stable wire name used in JSON snapshots.
            pub const fn name(self) -> &'static str {
                match self {
                    $(Ctr::$variant => $name,)+
                }
            }
        }
    };
}

counters! {
    // Data-plane traffic (unique application frames, not wire copies).
    MsgsOut => "msgs_out",
    MsgsIn => "msgs_in",
    BytesOut => "bytes_out",
    BytesIn => "bytes_in",
    // Reliability control plane.
    AcksOut => "acks_out",
    AcksIn => "acks_in",
    NacksOut => "nacks_out",
    NacksIn => "nacks_in",
    Retransmits => "retransmits",
    DedupDrops => "dedup_drops",
    DamagedDrops => "damaged_drops",
    Replayed => "replayed",
    StaleDrops => "stale_drops",
    HellosOut => "hellos_out",
    // Overload / flow control.
    Sheds => "sheds",
    CreditStalls => "credit_stalls",
    SaturationEvents => "saturation_events",
    // Application progress.
    OpsSubmitted => "ops_submitted",
    OpsApplied => "ops_applied",
    // Fault / supervision lifecycle.
    FaultsInjected => "faults_injected",
    Kills => "kills",
    Respawns => "respawns",
    EpochBumps => "epoch_bumps",
    // Sharding / elastic scaling.
    Migrations => "migrations",
    ShardGrows => "shard_grows",
    ShardShrinks => "shard_shrinks",
    // DES engine internals (sim scope only).
    Events => "events",
    TimersArmed => "timers_armed",
    TimersCancelled => "timers_cancelled",
    TimersFired => "timers_fired",
    CalendarPeak => "calendar_peak",
    TasksSpawned => "tasks_spawned",
    TasksCompleted => "tasks_completed",
}

/// One cache-padded `AtomicU64` per [`Ctr`] id.
pub struct CounterSet {
    cells: Box<[CachePadded<AtomicU64>]>,
}

impl Default for CounterSet {
    fn default() -> Self {
        Self::new()
    }
}

impl CounterSet {
    /// A zeroed set covering every [`Ctr`] id.
    pub fn new() -> Self {
        let cells = (0..Ctr::COUNT)
            .map(|_| CachePadded(AtomicU64::new(0)))
            .collect();
        CounterSet { cells }
    }

    /// Add `n` to `c` (relaxed; safe from any thread).
    #[inline]
    pub fn add(&self, c: Ctr, n: u64) {
        self.cells[c as usize].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment `c` by one.
    #[inline]
    pub fn inc(&self, c: Ctr) {
        self.add(c, 1);
    }

    /// Raise `c` to at least `v` (for peak gauges like
    /// [`Ctr::CalendarPeak`]).
    #[inline]
    pub fn raise(&self, c: Ctr, v: u64) {
        self.cells[c as usize].0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value of `c` (relaxed read).
    #[inline]
    pub fn get(&self, c: Ctr) -> u64 {
        self.cells[c as usize].0.load(Ordering::Relaxed)
    }

    /// Overwrite `c` (used when importing totals from a
    /// single-threaded engine's own accounting).
    #[inline]
    pub fn set(&self, c: Ctr, v: u64) {
        self.cells[c as usize].0.store(v, Ordering::Relaxed);
    }

    /// Relaxed point-in-time copy of every cell.
    pub fn values(&self) -> [u64; Ctr::COUNT] {
        let mut out = [0u64; Ctr::COUNT];
        for (i, cell) in self.cells.iter().enumerate() {
            out[i] = cell.0.load(Ordering::Relaxed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_indexed() {
        let mut seen = std::collections::HashSet::new();
        for (i, c) in Ctr::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
            assert!(seen.insert(c.name()), "duplicate name {}", c.name());
        }
    }

    #[test]
    fn add_get_raise() {
        let s = CounterSet::new();
        s.inc(Ctr::MsgsOut);
        s.add(Ctr::MsgsOut, 4);
        s.raise(Ctr::CalendarPeak, 9);
        s.raise(Ctr::CalendarPeak, 3);
        assert_eq!(s.get(Ctr::MsgsOut), 5);
        assert_eq!(s.get(Ctr::CalendarPeak), 9);
        assert_eq!(s.values()[Ctr::MsgsOut as usize], 5);
    }
}
