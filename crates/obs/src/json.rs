//! Tiny hand-rolled JSON helpers (the workspace deliberately has no
//! serde dependency). Only what the exporters need: string escaping
//! and float formatting that always round-trips as valid JSON.

/// Escape `s` for embedding inside a JSON string literal (without the
/// surrounding quotes).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (`NaN`/`inf` — which JSON cannot
/// represent — become `0`).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Minimal recursive-descent JSON well-formedness checker. Used by the
/// Perfetto-export smoke tests to validate emitted documents without a
/// parser dependency. Returns the byte offset of the first error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }
    fn value(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
        if depth > 128 {
            return Err(format!("nesting too deep at {pos}"));
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(());
                }
                loop {
                    skip_ws(b, pos);
                    string(b, pos)?;
                    skip_ws(b, pos);
                    if b.get(*pos) != Some(&b':') {
                        return Err(format!("expected ':' at {pos}"));
                    }
                    *pos += 1;
                    value(b, pos, depth + 1)?;
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or '}}' at {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(());
                }
                loop {
                    value(b, pos, depth + 1)?;
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or ']' at {pos}")),
                    }
                }
            }
            Some(b'"') => string(b, pos),
            Some(b't') => lit(b, pos, b"true"),
            Some(b'f') => lit(b, pos, b"false"),
            Some(b'n') => lit(b, pos, b"null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let start = *pos;
                *pos += 1;
                while *pos < b.len()
                    && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                {
                    *pos += 1;
                }
                if s_valid_number(&b[start..*pos]) {
                    Ok(())
                } else {
                    Err(format!("bad number at {start}"))
                }
            }
            _ => Err(format!("unexpected token at {pos}")),
        }
    }
    fn s_valid_number(n: &[u8]) -> bool {
        std::str::from_utf8(n)
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .is_some()
    }
    fn lit(b: &[u8], pos: &mut usize, want: &[u8]) -> Result<(), String> {
        if b.len() >= *pos + want.len() && &b[*pos..*pos + want.len()] == want {
            *pos += want.len();
            Ok(())
        } else {
            Err(format!("bad literal at {pos}"))
        }
    }
    fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at {pos}"));
        }
        *pos += 1;
        while let Some(&c) = b.get(*pos) {
            match c {
                b'"' => {
                    *pos += 1;
                    return Ok(());
                }
                b'\\' => {
                    match b.get(*pos + 1) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                        Some(b'u') => {
                            if b.len() < *pos + 6
                                || !b[*pos + 2..*pos + 6].iter().all(u8::is_ascii_hexdigit)
                            {
                                return Err(format!("bad \\u escape at {pos}"));
                            }
                            *pos += 6;
                        }
                        _ => return Err(format!("bad escape at {pos}")),
                    }
                }
                0x00..=0x1f => return Err(format!("raw control char at {pos}")),
                _ => *pos += 1,
            }
        }
        Err("unterminated string".to_string())
    }
    value(b, &mut pos, 0)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at {pos}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_and_rejects() {
        assert!(validate("{\"a\":[1,2.5,-3e2,true,null,\"x\\n\"]}").is_ok());
        assert!(validate("{}").is_ok());
        assert!(validate("{\"a\":}").is_err());
        assert!(validate("{\"a\":1,}").is_err());
        assert!(validate("[1 2]").is_err());
        assert!(validate("{\"a\":1} extra").is_err());
        assert!(validate("\"unterminated").is_err());
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn nonfinite_numbers_stay_valid() {
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(1.5), "1.5");
    }
}
