//! HDR-style log-linear histograms: fixed-size, lock-free to record,
//! merge-able by plain bucket addition.
//!
//! Layout: values below 2^5 land in unit-width buckets; above that,
//! each power-of-two octave is split into 32 linear sub-buckets, so the
//! relative quantization error is bounded by 1/32 ≈ 3.1% across the
//! whole `u64` range. The bucket array is a fixed 1920 slots (~15 KiB
//! of `u64`s), which keeps a histogram embeddable per proxy without
//! allocation on the record path.
//!
//! [`AtomicHistogram`] is the recorder (relaxed `fetch_add`s, safe to
//! share across threads); [`Histogram`] is the plain snapshot/merge
//! type. Merging is bucket-wise addition, hence associative and
//! commutative — asserted by `tests/obs.rs` across per-proxy snapshots.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per octave.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering all of `u64`.
pub const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

/// Bucket index for a recorded value.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let shift = exp - SUB_BITS;
        let sub = ((v >> shift) - SUB) as usize;
        ((shift as usize + 1) << SUB_BITS) + sub
    }
}

/// Inclusive lower bound of a bucket.
#[inline]
fn bucket_lo(idx: usize) -> u64 {
    if idx < SUB as usize {
        idx as u64
    } else {
        let shift = (idx >> SUB_BITS) as u32 - 1;
        let sub = (idx as u64) & (SUB - 1);
        (SUB + sub) << shift
    }
}

/// Representative (midpoint) value of a bucket, used for quantiles.
#[inline]
fn bucket_mid(idx: usize) -> u64 {
    if idx < SUB as usize {
        idx as u64
    } else {
        let shift = (idx >> SUB_BITS) as u32 - 1;
        bucket_lo(idx) + (1u64 << shift) / 2
    }
}

macro_rules! hists {
    ($($variant:ident => $name:literal,)+) => {
        /// Static histogram ids shared by the simulator and the runtime.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum HistId {
            $(
                #[allow(missing_docs)]
                $variant,
            )+
        }

        impl HistId {
            /// Number of histogram ids.
            pub const COUNT: usize = [$(HistId::$variant),+].len();
            /// Every id, in declaration order (== index order).
            pub const ALL: [HistId; HistId::COUNT] = [$(HistId::$variant),+];

            /// Stable wire name used in JSON snapshots.
            pub const fn name(self) -> &'static str {
                match self {
                    $(HistId::$variant => $name,)+
                }
            }
        }
    };
}

hists! {
    // Time a command sat in the SPSC queue before the proxy drained it.
    CmdWaitNs => "cmd_wait_ns",
    // Submit -> lsync-fired round trip (send overhead + gap + wire + ack).
    LsyncRttNs => "lsync_rtt_ns",
    // Wire frame send -> cumulative-ack release (go-back-N RTT).
    WireRttNs => "wire_rtt_ns",
    // Watchdog busy-fraction samples, in permille (0..=1000).
    BusyPermille => "busy_permille",
}

/// Plain (non-atomic) histogram: the snapshot and merge type.
#[derive(Clone)]
pub struct Histogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    /// Compact summary — dumping 1920 raw buckets helps nobody.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max())
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold `other` into `self` (bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Recorded sample count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`), accurate to the bucket
    /// resolution (≤ ~3.1% relative error).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_mid(idx).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, for exporters.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_lo(i), n))
            .collect()
    }
}

/// Lock-free recorder: relaxed atomic `fetch_add` per sample, shared
/// across threads, snapshot without stopping the writer.
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty recorder.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value (relaxed; ~4 uncontended atomic adds).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Point-in-time copy. Relaxed per-cell reads: a snapshot racing
    /// the recorder may be off by in-flight samples but each cell is
    /// itself consistent, and a quiesced recorder snapshots exactly.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            h.buckets[i] = n;
            count += n;
        }
        // Derive `count` from the buckets so count == Σ buckets holds
        // even mid-flight.
        h.count = count;
        h.sum = self.sum.load(Ordering::Relaxed);
        h.min = self.min.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_bounds() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1 << 20, u64::MAX] {
            let idx = bucket_of(v);
            assert!(idx < BUCKETS, "v={v} idx={idx}");
            let lo = bucket_lo(idx);
            assert!(lo <= v, "v={v} lo={lo}");
            if idx + 1 < BUCKETS {
                assert!(bucket_lo(idx + 1) > v, "v={v} next_lo={}", bucket_lo(idx + 1));
            }
        }
    }

    #[test]
    fn quantile_error_bounded() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        let p50 = h.quantile(0.5) as f64;
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.04, "p50={p50}");
        let p99 = h.quantile(0.99) as f64;
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.04, "p99={p99}");
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [3u64, 70, 900, 44_000] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 70, 123_456_789] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.nonzero_buckets(), both.nonzero_buckets());
    }

    #[test]
    fn atomic_snapshot_matches_plain() {
        let ah = AtomicHistogram::new();
        let mut h = Histogram::new();
        for v in [0u64, 5, 31, 32, 1000, 1 << 40] {
            ah.record(v);
            h.record(v);
        }
        let snap = ah.snapshot();
        assert_eq!(snap.count(), h.count());
        assert_eq!(snap.nonzero_buckets(), h.nonzero_buckets());
        assert_eq!(snap.max(), h.max());
    }
}
