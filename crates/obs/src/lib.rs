//! `mproxy-obs` — always-on telemetry for the message-proxy engines.
//!
//! The paper's argument (§5.4) is quantitative: proxy occupancy must
//! stay under the 50% stability bound or the fabric collapses. This
//! crate makes that observable as a first-class layer shared by the
//! discrete-event simulator (`mproxy` / `mproxy-des`) and the threaded
//! runtime (`mproxy-rt`):
//!
//! * [`Ctr`] / [`CounterSet`] — static metric ids backed by
//!   cache-padded relaxed atomics, snapshot-able without stopping the
//!   world. Counters are *always on*.
//! * [`HistId`] / [`AtomicHistogram`] — HDR-style log-linear
//!   histograms (fixed 1920 buckets, ≤3.1% relative error),
//!   merge-able by bucket addition across proxy snapshots.
//! * [`FlightRecorder`] — a per-proxy lock-free ring of compact 16-byte
//!   [`TraceEvent`]s (enqueue/drain/retransmit/epoch-bump/kill/
//!   respawn/...), zero-cost when disabled, dumpable on panic or on
//!   demand.
//! * [`Snapshot`] — the JSON export unit feeding the bench bins and
//!   `ShutdownReport`, and [`chrome::chrome_trace`] — a Chrome
//!   `trace_event` (Perfetto) exporter rendering kills, Hello resyncs
//!   and RTO storms on a timeline.
//!
//! Both engines register [`Scope`]s on an [`ObsHub`] using the *same*
//! metric ids, so sim/runtime A/B comparisons line up column for
//! column. The overhead budget (≤5% with recording enabled, ~0%
//! disabled) is enforced by the `rt_obs` bench gate.

#![forbid(unsafe_code)]

pub mod chrome;
mod counters;
mod hist;
pub mod json;
mod ring;
mod snapshot;

pub use counters::{CounterSet, Ctr};
pub use hist::{AtomicHistogram, HistId, Histogram, BUCKETS};
pub use ring::{EventKind, FlightRecorder, TraceEvent};
pub use snapshot::{ObsHub, Scope, ScopeSnapshot, Snapshot, DEFAULT_RING_CAP};
