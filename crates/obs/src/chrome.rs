//! Chrome `trace_event` (about://tracing / Perfetto) exporter.
//!
//! Renders flight-recorder dumps as a JSON object with a
//! `traceEvents` array: one *process* per scope (pid = registration
//! index, named via `process_name` metadata), instant events (`ph:"i"`)
//! for every ring event, and synthesized duration spans (`ph:"X"`) for
//! the supervision lifecycle — `kill → respawn` rendered as a
//! `proxy-dead` span and `respawn → first ack` as a `resync` span — so
//! a chaos run's kills, Hello resyncs, and RTO storms read directly
//! off the timeline. Timestamps are microseconds (the trace_event
//! unit); ring timestamps are nanoseconds, so sub-µs precision is kept
//! as fractional `ts`.

use crate::json;
use crate::ring::{EventKind, TraceEvent};

fn push_event(out: &mut String, first: &mut bool, body: &str) {
    if !*first {
        out.push(',');
    }
    out.push_str("\n    ");
    out.push_str(body);
    *first = false;
}

/// Serialize scope dumps (from [`crate::ObsHub::trace_dump`]) into a
/// Chrome `trace_event` JSON document.
pub fn chrome_trace(scopes: &[(String, Vec<TraceEvent>)]) -> String {
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [");
    let mut first = true;
    for (pid, (name, events)) in scopes.iter().enumerate() {
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json::esc(name)
            ),
        );
        for e in events {
            let ts = e.t_ns as f64 / 1000.0;
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{pid},\
                     \"tid\":0,\"args\":{{\"a\":{},\"b\":{}}}}}",
                    e.kind.name(),
                    json::num(ts),
                    e.a,
                    e.b
                ),
            );
        }
        for span in lifecycle_spans(events) {
            let ts = span.start_ns as f64 / 1000.0;
            let dur = (span.end_ns.saturating_sub(span.start_ns)) as f64 / 1000.0;
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\
                     \"tid\":0,\"args\":{{}}}}",
                    span.name,
                    json::num(ts),
                    json::num(dur)
                ),
            );
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

struct Span {
    name: &'static str,
    start_ns: u64,
    end_ns: u64,
}

/// Synthesize supervision-lifecycle spans from a scope's event stream:
/// `proxy-dead` covers kill → respawn, `resync` covers respawn → the
/// first subsequent inbound ack (the peer's answer to the Hello probe),
/// falling back to the respawn's Hello itself if no ack was recorded.
fn lifecycle_spans(events: &[TraceEvent]) -> Vec<Span> {
    let mut spans = Vec::new();
    for (i, e) in events.iter().enumerate() {
        match e.kind {
            EventKind::Kill => {
                if let Some(re) = events[i + 1..]
                    .iter()
                    .find(|n| n.kind == EventKind::Respawn)
                {
                    spans.push(Span {
                        name: "proxy-dead",
                        start_ns: e.t_ns,
                        end_ns: re.t_ns,
                    });
                }
            }
            EventKind::Respawn => {
                let end = events[i + 1..]
                    .iter()
                    .find(|n| n.kind == EventKind::AckIn)
                    .or_else(|| events[i + 1..].iter().find(|n| n.kind == EventKind::Hello));
                if let Some(end) = end {
                    spans.push(Span {
                        name: "resync",
                        start_ns: e.t_ns,
                        end_ns: end.t_ns,
                    });
                }
            }
            _ => {}
        }
    }
    spans
}

/// `true` if the document contains at least one kill → respawn →
/// resync sequence (used by the acceptance smoke test).
pub fn has_recovery_span(trace_json: &str) -> bool {
    trace_json.contains("\"name\":\"kill\"")
        && trace_json.contains("\"name\":\"respawn\"")
        && trace_json.contains("\"name\":\"resync\"")
        && trace_json.contains("\"name\":\"proxy-dead\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            t_ns,
            kind,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn emits_valid_json_with_spans() {
        let scopes = vec![(
            "node0".to_string(),
            vec![
                ev(100, EventKind::Send),
                ev(1_000, EventKind::Kill),
                ev(5_000, EventKind::Respawn),
                ev(5_100, EventKind::Hello),
                ev(9_000, EventKind::AckIn),
            ],
        )];
        let doc = chrome_trace(&scopes);
        json::validate(&doc).expect("valid trace JSON");
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"process_name\""));
        assert!(doc.contains("\"proxy-dead\""));
        assert!(doc.contains("\"resync\""));
        assert!(has_recovery_span(&doc));
    }

    #[test]
    fn empty_dump_is_still_valid() {
        let doc = chrome_trace(&[]);
        json::validate(&doc).expect("valid empty trace");
        assert!(!has_recovery_span(&doc));
    }
}
