//! The registry ([`ObsHub`]), per-proxy handles ([`Scope`]), and the
//! stop-the-world-free snapshot model ([`Snapshot`]) with its JSON
//! serializer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::counters::{CounterSet, Ctr};
use crate::hist::{AtomicHistogram, HistId, Histogram};
use crate::json;
use crate::ring::{EventKind, FlightRecorder, TraceEvent};

/// Default flight-recorder capacity per scope (events).
pub const DEFAULT_RING_CAP: usize = 4096;

/// Telemetry registry: owns the recording flag and every registered
/// [`Scope`]. Counters are always on (cheap relaxed adds); histograms
/// and the flight recorder only record while `recording` is set, so a
/// disabled hub costs one relaxed load + branch per call site.
pub struct ObsHub {
    // Shared (not owned) by every scope, so scopes hold no back-pointer
    // to the hub and no `Arc` cycle forms.
    recording: Arc<AtomicBool>,
    started: Instant,
    scopes: Mutex<Vec<Arc<Scope>>>,
}

impl ObsHub {
    /// A fresh hub. `recording` arms histograms + flight recorders.
    pub fn new(recording: bool) -> Arc<ObsHub> {
        Self::new_at(recording, Instant::now())
    }

    /// A fresh hub whose trace epoch is `started` — engines pass their
    /// own start instant so hub stamps and engine-relative stamps agree.
    pub fn new_at(recording: bool, started: Instant) -> Arc<ObsHub> {
        Arc::new(ObsHub {
            recording: Arc::new(AtomicBool::new(recording)),
            started,
            scopes: Mutex::new(Vec::new()),
        })
    }

    /// Register a named scope (one per proxy/node, or one per engine).
    pub fn register(self: &Arc<Self>, name: impl Into<String>, ring_cap: usize) -> Arc<Scope> {
        let scope = Arc::new(Scope {
            name: name.into(),
            recording: Arc::clone(&self.recording),
            started: self.started,
            counters: CounterSet::new(),
            hists: std::array::from_fn(|_| AtomicHistogram::new()),
            ring: FlightRecorder::new(ring_cap),
        });
        self.scopes.lock().unwrap().push(Arc::clone(&scope));
        scope
    }

    /// Arm or disarm histogram + trace recording.
    pub fn set_recording(&self, on: bool) {
        self.recording.store(on, Ordering::Relaxed);
    }

    /// Whether histograms + traces are recording.
    #[inline]
    pub fn recording(&self) -> bool {
        self.recording.load(Ordering::Relaxed)
    }

    /// Nanoseconds since the hub was created (the runtime trace epoch).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Point-in-time snapshot of every scope, without stopping writers.
    pub fn snapshot(&self, label: &str) -> Snapshot {
        let scopes = self.scopes.lock().unwrap();
        Snapshot {
            label: label.to_string(),
            scopes: scopes.iter().map(|s| s.snapshot()).collect(),
        }
    }

    /// Dump every scope's flight recorder, oldest event first.
    pub fn trace_dump(&self) -> Vec<(String, Vec<TraceEvent>)> {
        let scopes = self.scopes.lock().unwrap();
        scopes
            .iter()
            .map(|s| (s.name.clone(), s.events()))
            .collect()
    }
}

/// A named telemetry handle: one counter set, one histogram per
/// [`HistId`], one flight-recorder ring.
pub struct Scope {
    name: String,
    recording: Arc<AtomicBool>,
    started: Instant,
    counters: CounterSet,
    hists: [AtomicHistogram; HistId::COUNT],
    ring: FlightRecorder,
}

impl Scope {
    /// Scope name (e.g. `"node3"` or `"sim"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether histograms + traces are recording (hub-wide flag).
    #[inline]
    pub fn recording(&self) -> bool {
        self.recording.load(Ordering::Relaxed)
    }

    /// Nanoseconds since the owning hub was created.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Add `n` to counter `c` (always on).
    #[inline]
    pub fn add(&self, c: Ctr, n: u64) {
        self.counters.add(c, n);
    }

    /// Increment counter `c` (always on).
    #[inline]
    pub fn inc(&self, c: Ctr) {
        self.counters.inc(c);
    }

    /// Raise peak-gauge counter `c` to at least `v` (always on).
    #[inline]
    pub fn raise(&self, c: Ctr, v: u64) {
        self.counters.raise(c, v);
    }

    /// Current counter value.
    #[inline]
    pub fn get(&self, c: Ctr) -> u64 {
        self.counters.get(c)
    }

    /// Record `v` into histogram `h` if recording is armed.
    #[inline]
    pub fn record(&self, h: HistId, v: u64) {
        if self.recording() {
            self.hists[h as usize].record(v);
        }
    }

    /// Trace an event stamped with the hub clock, if recording.
    #[inline]
    pub fn trace(&self, kind: EventKind, a: u16, b: u32) {
        if self.recording() {
            self.ring.record(self.now_ns(), kind, a, b);
        }
    }

    /// Trace an event with a caller-supplied timestamp (the simulator
    /// passes sim time), if recording.
    #[inline]
    pub fn trace_at(&self, t_ns: u64, kind: EventKind, a: u16, b: u32) {
        if self.recording() {
            self.ring.record(t_ns, kind, a, b);
        }
    }

    /// Dump this scope's surviving trace events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.dump()
    }

    /// Point-in-time copy of counters + histograms.
    pub fn snapshot(&self) -> ScopeSnapshot {
        ScopeSnapshot {
            name: self.name.clone(),
            counters: self.counters.values(),
            hists: self.hists.iter().map(|h| h.snapshot()).collect(),
        }
    }
}

/// Plain copy of one scope's counters and histograms.
#[derive(Debug, Clone)]
pub struct ScopeSnapshot {
    /// Scope name.
    pub name: String,
    counters: [u64; Ctr::COUNT],
    hists: Vec<Histogram>,
}

impl ScopeSnapshot {
    /// An empty snapshot — used by single-threaded engines that build
    /// their telemetry export from their own accounting.
    pub fn empty(name: impl Into<String>) -> Self {
        ScopeSnapshot {
            name: name.into(),
            counters: [0; Ctr::COUNT],
            hists: (0..HistId::COUNT).map(|_| Histogram::new()).collect(),
        }
    }

    /// Counter value.
    pub fn counter(&self, c: Ctr) -> u64 {
        self.counters[c as usize]
    }

    /// Overwrite a counter (import path for sim accounting).
    pub fn set_counter(&mut self, c: Ctr, v: u64) {
        self.counters[c as usize] = v;
    }

    /// Histogram for `h`.
    pub fn hist(&self, h: HistId) -> &Histogram {
        &self.hists[h as usize]
    }

    /// Replace the histogram for `h` (import path for sim accounting).
    pub fn set_hist(&mut self, h: HistId, hist: Histogram) {
        self.hists[h as usize] = hist;
    }

    /// Bucket-wise merge of `other` into `self`: counters add,
    /// histograms merge (same algebra as [`Snapshot::merged_hist`] —
    /// associative and commutative). `self.name` is kept; the sharded
    /// runtime uses this to collapse per-shard scopes into a node view.
    pub fn absorb(&mut self, other: &ScopeSnapshot) {
        for c in Ctr::ALL {
            self.counters[c as usize] += other.counters[c as usize];
        }
        for (h, oh) in self.hists.iter_mut().zip(other.hists.iter()) {
            h.merge(oh);
        }
    }

    fn json_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(out, "{{\"name\":\"{}\",\"counters\":{{", json::esc(&self.name));
        let mut first = true;
        for c in Ctr::ALL {
            let v = self.counter(c);
            if v != 0 {
                if !first {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", c.name(), v);
                first = false;
            }
        }
        out.push_str("},\"hists\":{");
        let mut first = true;
        for h in HistId::ALL {
            let hist = self.hist(h);
            if hist.count() == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"mean\":{},\"min\":{},\"p50\":{},\"p90\":{},\
                 \"p99\":{},\"max\":{}}}",
                h.name(),
                hist.count(),
                json::num(hist.mean()),
                hist.min(),
                hist.quantile(0.5),
                hist.quantile(0.9),
                hist.quantile(0.99),
                hist.max(),
            );
            first = false;
        }
        out.push_str("}}");
    }
}

/// A labeled collection of scope snapshots — the JSON export unit fed
/// to bench bins and `ShutdownReport`.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Free-form label (bench name, scenario name, ...).
    pub label: String,
    /// Per-scope snapshots, in registration order.
    pub scopes: Vec<ScopeSnapshot>,
}

impl Snapshot {
    /// Sum of counter `c` across all scopes.
    pub fn total(&self, c: Ctr) -> u64 {
        self.scopes.iter().map(|s| s.counter(c)).sum()
    }

    /// Merge histogram `h` across all scopes (bucket-wise addition).
    pub fn merged_hist(&self, h: HistId) -> Histogram {
        let mut out = Histogram::new();
        for s in &self.scopes {
            out.merge(s.hist(h));
        }
        out
    }

    /// Collapse scopes into groups keyed by `group(name)`: scopes that
    /// map to the same key are [`ScopeSnapshot::absorb`]ed (counters
    /// summed, histograms merged bucket-wise) into one scope named
    /// after the key, in order of first appearance. The sharded
    /// runtime uses this to present a per-node view over per-shard
    /// scopes (`node1s0`, `node1s1`, ... -> `node1`).
    pub fn merged_by(&self, group: impl Fn(&str) -> String) -> Snapshot {
        let mut scopes: Vec<ScopeSnapshot> = Vec::new();
        for s in &self.scopes {
            let key = group(&s.name);
            if let Some(g) = scopes.iter_mut().find(|g| g.name == key) {
                g.absorb(s);
            } else {
                let mut g = s.clone();
                g.name = key;
                scopes.push(g);
            }
        }
        Snapshot {
            label: self.label.clone(),
            scopes,
        }
    }

    /// Compact (single-line) JSON document:
    /// `{"label":...,"scopes":[{"name":...,"counters":{...},"hists":{...}}]}`.
    /// Counters are emitted only when non-zero, histograms only when
    /// non-empty; absent keys read as zero/empty.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"label\":\"");
        out.push_str(&json::esc(&self.label));
        out.push_str("\",\"scopes\":[");
        for (i, s) in self.scopes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            s.json_into(&mut out);
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_snapshot_and_json() {
        let hub = ObsHub::new(true);
        let a = hub.register("node0", 64);
        let b = hub.register("node1", 64);
        a.inc(Ctr::MsgsOut);
        a.add(Ctr::BytesOut, 320);
        a.record(HistId::WireRttNs, 1500);
        b.inc(Ctr::MsgsIn);
        b.trace(EventKind::Hello, 0, 7);

        let snap = hub.snapshot("test");
        assert_eq!(snap.total(Ctr::MsgsOut), 1);
        assert_eq!(snap.total(Ctr::MsgsIn), 1);
        assert_eq!(snap.scopes[0].counter(Ctr::BytesOut), 320);
        assert_eq!(snap.merged_hist(HistId::WireRttNs).count(), 1);

        let json = snap.to_json();
        assert!(json.contains("\"label\":\"test\""));
        assert!(json.contains("\"msgs_out\":1"));
        assert!(json.contains("\"wire_rtt_ns\""));

        let dumps = hub.trace_dump();
        assert_eq!(dumps.len(), 2);
        assert_eq!(dumps[1].1.len(), 1);
        assert_eq!(dumps[1].1[0].kind, EventKind::Hello);
    }

    #[test]
    fn disabled_hub_records_counters_but_not_hists_or_traces() {
        let hub = ObsHub::new(false);
        let s = hub.register("n", 64);
        s.inc(Ctr::Sheds);
        s.record(HistId::CmdWaitNs, 10);
        s.trace(EventKind::Shed, 0, 0);
        let snap = s.snapshot();
        assert_eq!(snap.counter(Ctr::Sheds), 1);
        assert_eq!(snap.hist(HistId::CmdWaitNs).count(), 0);
        assert!(s.events().is_empty());
    }
}
