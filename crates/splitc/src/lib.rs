//! # mproxy-splitc — Split-C-style global access over RMA
//!
//! The paper's third programming style: "Split-C, an extension to the C
//! language that provides globally-addressable variables and arrays ...
//! \[and\] a global address space for shared data" (Culler et al.,
//! Supercomputing'93). Six of the ten applications (MM, FFT, Sample,
//! Sampleb, P-Ray, Wator) are written against this layer.
//!
//! The key idea is *split-phase* access: [`SplitC::get_nb`] /
//! [`SplitC::put_nb`] issue the transfer and return; [`SplitC::sync`]
//! waits for every outstanding transfer, letting programs overlap
//! communication with computation. [`SplitC::store`] is the one-way
//! `:-` store whose global completion is awaited by
//! [`SplitC::all_store_sync`].
//!
//! # Examples
//!
//! ```
//! use mproxy::{Cluster, ClusterSpec, ProcId};
//! use mproxy_am::Am;
//! use mproxy_des::Simulation;
//! use mproxy_splitc::{GlobalPtr, SplitC};
//!
//! let sim = Simulation::new();
//! let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(mproxy_model::MP1, 2, 1)).unwrap();
//! cluster.spawn_spmd(|p| async move {
//!     let am = Am::new(&p);
//!     let sc = SplitC::new(&p, &am);
//!     let arr = p.alloc(64);
//!     p.ctx().yield_now().await;
//!     if p.rank() == ProcId(0) {
//!         // Split-phase read of rank 1's array, overlap, then sync.
//!         let remote = GlobalPtr { proc: ProcId(1), addr: arr };
//!         sc.get_nb(remote, arr, 64).await;
//!         p.compute(100).await; // overlapped work
//!         sc.sync().await;
//!     }
//! });
//! assert!(cluster.run(&sim).completed_cleanly());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::rc::Rc;

use mproxy::{Addr, Proc, ProcId, SyncFlag};
use mproxy_am::{Am, Coll};

/// A global pointer: a process and an address within its space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalPtr {
    /// The owning process.
    pub proc: ProcId,
    /// Address within that process's space.
    pub addr: Addr,
}

impl GlobalPtr {
    /// Offsets the pointer by `bytes` within the same process.
    #[must_use]
    pub fn offset(self, bytes: u64) -> GlobalPtr {
        GlobalPtr {
            proc: self.proc,
            addr: self.addr.offset(bytes),
        }
    }

    /// Indexes the pointer by elements of `elem_bytes`.
    #[must_use]
    pub fn index(self, i: u64, elem_bytes: u64) -> GlobalPtr {
        GlobalPtr {
            proc: self.proc,
            addr: self.addr.index(i, elem_bytes),
        }
    }
}

struct ScState {
    op_flag: SyncFlag,
    issued: Cell<u64>,
    store_arrivals: SyncFlag,
    stores_issued: Cell<u64>,
    scratch: Addr,
}

/// The per-process Split-C context. Cloneable; clones share state.
#[derive(Clone)]
pub struct SplitC {
    p: Proc,
    am: Am,
    st: Rc<ScState>,
}

impl SplitC {
    /// Creates the context (deterministic flag allocation: every SPMD rank
    /// must construct its `SplitC` at the same point in setup).
    #[must_use]
    pub fn new(p: &Proc, am: &Am) -> SplitC {
        SplitC {
            p: p.clone(),
            am: am.clone(),
            st: Rc::new(ScState {
                op_flag: p.new_flag(),
                issued: Cell::new(0),
                store_arrivals: p.new_flag(),
                stores_issued: Cell::new(0),
                scratch: p.alloc(64),
            }),
        }
    }

    /// The owning process.
    #[must_use]
    pub fn proc(&self) -> &Proc {
        &self.p
    }

    /// Split-phase global read: issue and return. Complete with
    /// [`SplitC::sync`].
    pub async fn get_nb(&self, src: GlobalPtr, laddr: Addr, nbytes: u32) {
        self.st.issued.set(self.st.issued.get() + 1);
        self.p
            .get(
                laddr,
                src.proc.into(),
                src.addr,
                nbytes,
                Some(&self.st.op_flag),
                None,
            )
            .await
            .expect("split-phase get failed");
    }

    /// Split-phase global write: issue and return. Complete with
    /// [`SplitC::sync`] (completion means remotely delivered and acked).
    pub async fn put_nb(&self, laddr: Addr, dst: GlobalPtr, nbytes: u32) {
        self.st.issued.set(self.st.issued.get() + 1);
        self.p
            .put(
                laddr,
                dst.proc.into(),
                dst.addr,
                nbytes,
                Some(&self.st.op_flag),
                None,
            )
            .await
            .expect("split-phase put failed");
    }

    /// Waits for every outstanding split-phase operation, servicing
    /// active messages meanwhile.
    pub async fn sync(&self) {
        let target = self.st.issued.get();
        let flag = self.st.op_flag.clone();
        self.am.poll_while(|| flag.count() >= target).await;
    }

    /// One-way store (`:-` in Split-C): no local completion; the target's
    /// arrival counter increments on delivery. Globally completed by
    /// [`SplitC::all_store_sync`].
    pub async fn store(&self, laddr: Addr, dst: GlobalPtr, nbytes: u32) {
        self.st.stores_issued.set(self.st.stores_issued.get() + 1);
        let rflag = self.p.remote_flag(dst.proc, self.st.store_arrivals.id());
        self.p
            .put(laddr, dst.proc.into(), dst.addr, nbytes, None, Some(rflag))
            .await
            .expect("store failed");
    }

    /// Store arrivals observed locally so far.
    #[must_use]
    pub fn store_arrivals(&self) -> u64 {
        self.st.store_arrivals.count()
    }

    /// Global completion of all [`SplitC::store`]s: every rank waits until
    /// the cluster-wide arrival count matches the cluster-wide issue
    /// count (Split-C's `all_store_sync`).
    pub async fn all_store_sync(&self, coll: &Coll) {
        loop {
            let issued = coll.allreduce_sum(self.st.stores_issued.get() as f64).await;
            let arrived = coll
                .allreduce_sum(self.st.store_arrivals.count() as f64)
                .await;
            if issued == arrived {
                break;
            }
            // Stores still in flight; drain a batch before re-checking so
            // the global counters are not hammered (each check is a full
            // reduction).
            for _ in 0..16 {
                self.am.poll().await;
            }
        }
    }

    /// Blocking global read of one `f64`.
    pub async fn read_f64(&self, src: GlobalPtr) -> f64 {
        if src.proc == self.p.rank() {
            self.p.compute_us(0.1).await;
            return self.p.read_f64(src.addr);
        }
        self.am
            .get_bulk(src.proc, self.st.scratch, src.addr, 8)
            .await;
        self.p.read_f64(self.st.scratch)
    }

    /// Blocking global write of one `f64`.
    pub async fn write_f64(&self, dst: GlobalPtr, v: f64) {
        if dst.proc == self.p.rank() {
            self.p.compute_us(0.1).await;
            self.p.write_f64(dst.addr, v);
            return;
        }
        self.p.write_f64(self.st.scratch, v);
        let flag = self.p.new_flag();
        self.p
            .put(
                self.st.scratch,
                dst.proc.into(),
                dst.addr,
                8,
                Some(&flag),
                None,
            )
            .await
            .expect("global write failed");
        let f = flag.clone();
        self.am.poll_while(|| f.count() >= 1).await;
    }

    /// Blocking bulk read (`bulk_get`), polling while waiting.
    pub async fn bulk_get(&self, src: GlobalPtr, laddr: Addr, nbytes: u32) {
        if src.proc == self.p.rank() {
            let data = self.p.read_bytes(src.addr, nbytes);
            self.p
                .compute_us(f64::from(nbytes.div_ceil(64)) * 0.05)
                .await;
            self.p.write_bytes(laddr, &data);
            return;
        }
        self.am.get_bulk(src.proc, laddr, src.addr, nbytes).await;
    }

    /// Blocking bulk write (`bulk_put`), polling while waiting for the
    /// remote ack.
    pub async fn bulk_put(&self, laddr: Addr, dst: GlobalPtr, nbytes: u32) {
        let flag = self.p.new_flag();
        self.p
            .put(laddr, dst.proc.into(), dst.addr, nbytes, Some(&flag), None)
            .await
            .expect("bulk put failed");
        let f = flag.clone();
        self.am.poll_while(|| f.count() >= 1).await;
    }
}

impl std::fmt::Debug for SplitC {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SplitC")
            .field("proc", &self.p.rank())
            .field(
                "outstanding",
                &(self.st.issued.get() - self.st.op_flag.count()),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mproxy::{Cluster, ClusterSpec};
    use mproxy_des::Simulation;
    use mproxy_model::{HW0, MP2, SW1};
    use std::future::Future;

    fn run_sc<F, Fut>(design: mproxy_model::DesignPoint, n: usize, body: F)
    where
        F: Fn(Proc, SplitC, Coll) -> Fut,
        Fut: Future<Output = ()> + 'static,
    {
        let sim = Simulation::new();
        let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(design, n, 1)).unwrap();
        cluster.spawn_spmd(move |p| {
            let am = Am::new(&p);
            let sc = SplitC::new(&p, &am);
            let coll = Coll::new(&p, Some(am));
            body(p, sc, coll)
        });
        let report = cluster.run(&sim);
        assert!(report.completed_cleanly(), "split-c test deadlocked");
    }

    #[test]
    fn split_phase_get_overlaps_and_lands() {
        run_sc(MP2, 2, |p, sc, coll| async move {
            let arr = p.alloc(128);
            for i in 0..16u64 {
                p.write_f64(arr.index(i, 8), f64::from(p.rank().0) * 100.0 + i as f64);
            }
            let dst = p.alloc(128);
            coll.barrier().await;
            if p.rank().0 == 0 {
                let remote = GlobalPtr {
                    proc: ProcId(1),
                    addr: arr,
                };
                sc.get_nb(remote, dst, 128).await;
                p.compute(500).await;
                sc.sync().await;
                for i in 0..16u64 {
                    assert_eq!(p.read_f64(dst.index(i, 8)), 100.0 + i as f64);
                }
            }
            coll.barrier().await;
        });
    }

    #[test]
    fn stores_complete_globally() {
        for d in [MP2, HW0, SW1] {
            run_sc(d, 4, |p, sc, coll| async move {
                let n = p.nprocs() as u64;
                let slots = p.alloc(8 * n);
                let mine = p.alloc(8);
                p.write_f64(mine, f64::from(p.rank().0 + 1));
                coll.barrier().await;
                // Everyone stores its value into everyone's slot array.
                for r in 0..n {
                    let dst = GlobalPtr {
                        proc: ProcId(r as u32),
                        addr: slots.index(u64::from(p.rank().0), 8),
                    };
                    sc.store(mine, dst, 8).await;
                }
                sc.all_store_sync(&coll).await;
                let total: f64 = (0..n).map(|r| p.read_f64(slots.index(r, 8))).sum();
                assert_eq!(total, (n * (n + 1) / 2) as f64, "{}", d.name);
                coll.barrier().await;
            });
        }
    }

    #[test]
    fn blocking_scalar_and_bulk_round_trip() {
        run_sc(MP2, 2, |p, sc, coll| async move {
            let cell = p.alloc(8);
            let buf = p.alloc(256);
            coll.barrier().await;
            let peer = ProcId(1 - p.rank().0);
            let remote_cell = GlobalPtr {
                proc: peer,
                addr: cell,
            };
            if p.rank().0 == 0 {
                sc.write_f64(remote_cell, 42.5).await;
                assert_eq!(sc.read_f64(remote_cell).await, 42.5);
                // Bulk put then read back.
                for i in 0..32u64 {
                    p.write_f64(buf.index(i, 8), i as f64);
                }
                sc.bulk_put(
                    buf,
                    GlobalPtr {
                        proc: peer,
                        addr: buf,
                    },
                    256,
                )
                .await;
                let check = p.alloc(256);
                sc.bulk_get(
                    GlobalPtr {
                        proc: peer,
                        addr: buf,
                    },
                    check,
                    256,
                )
                .await;
                for i in 0..32u64 {
                    assert_eq!(p.read_f64(check.index(i, 8)), i as f64);
                }
                // Release the peer from its service loop.
                sc.write_f64(
                    GlobalPtr {
                        proc: peer,
                        addr: cell.offset(0),
                    },
                    -1.0,
                )
                .await;
            } else {
                // Service requests until the sentinel lands.
                let me = p.clone();
                sc.am.poll_while(move || me.read_f64(cell) == -1.0).await;
            }
            coll.barrier().await;
        });
    }

    #[test]
    fn local_fast_paths() {
        run_sc(MP2, 1, |p, sc, _coll| async move {
            let a = p.alloc(64);
            let me = GlobalPtr {
                proc: p.rank(),
                addr: a,
            };
            sc.write_f64(me, 7.25).await;
            assert_eq!(sc.read_f64(me).await, 7.25);
            let b = p.alloc(64);
            sc.bulk_get(me, b, 64).await;
            assert_eq!(p.read_f64(b), 7.25);
        });
    }

    #[test]
    fn global_ptr_arithmetic() {
        let g = GlobalPtr {
            proc: ProcId(3),
            addr: Addr(100),
        };
        assert_eq!(g.offset(8).addr, Addr(108));
        assert_eq!(g.index(4, 8).addr, Addr(132));
        assert_eq!(g.index(4, 8).proc, ProcId(3));
    }
}
