//! A minimal, dependency-free stand-in for the `bytes` crate.
//!
//! The workspace builds in offline environments where crates.io is not
//! reachable, so the external `bytes` dependency is replaced by this local
//! shim providing exactly the surface the proxy stack uses: a cheaply
//! cloneable, immutable, contiguous byte buffer with zero-copy slicing.
//!
//! `Bytes` is an `Arc<[u8]>` plus an offset/length window; `clone` and
//! `slice` are O(1) and never copy the payload — the property the
//! simulator relies on when a packet is retransmitted or duplicated.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Wraps a static slice (copied once; the shim keeps one representation).
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length of the view in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a zero-copy sub-view of this buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(begin <= end, "slice range inverted: {begin} > {end}");
        assert!(end <= self.len, "slice end {end} out of bounds ({})", self.len);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            len: end - begin,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for e in std::ascii::escape_default(b) {
                write!(f, "{}", e as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_slice() {
        let b = Bytes::copy_from_slice(b"hello world");
        assert_eq!(b.len(), 11);
        assert_eq!(&b[..], b"hello world");
        let tail = b.slice(6..);
        assert_eq!(&tail[..], b"world");
        let mid = b.slice(3..5);
        assert_eq!(&mid[..], b"lo");
        let sub = tail.slice(1..3);
        assert_eq!(&sub[..], b"or");
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Arc::ptr_eq(&b.data, &c.data));
    }

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        let s = Bytes::from_static(b"abc");
        assert_eq!(&s[..], b"abc");
        assert_eq!(format!("{s:?}"), "b\"abc\"");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_oob_panics() {
        let _ = Bytes::from(vec![1u8]).slice(0..2);
    }
}
