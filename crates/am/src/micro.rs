//! Active-message micro-benchmarks: the "AM latency" row of Table 4 and
//! the AM-store ping-pong curves of Figure 7.

use std::cell::RefCell;
use std::rc::Rc;

use mproxy::{Cluster, ClusterSpec, ProcId};
use mproxy_des::Simulation;
use mproxy_model::DesignPoint;

use crate::am::Am;

/// One point of the Figure 7 AM-store curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmStorePoint {
    /// Payload size, bytes.
    pub bytes: u32,
    /// One-way latency, µs.
    pub latency_us: f64,
    /// Achieved bandwidth, MB/s.
    pub bandwidth_mbs: f64,
}

fn two_node_cluster(design: DesignPoint) -> (Simulation, Cluster) {
    let sim = Simulation::new();
    let cluster =
        Cluster::new(&sim.ctx(), ClusterSpec::new(design, 2, 1)).expect("valid micro spec");
    (sim, cluster)
}

/// Measures the `am_request`/`am_reply` round trip (Table 4 "AM latency"):
/// submit a request to a remote node and receive the reply, with both
/// sides polling.
#[must_use]
pub fn am_roundtrip_us(design: DesignPoint, reps: u64) -> f64 {
    let (sim, cluster) = two_node_cluster(design);
    let out = Rc::new(RefCell::new(0.0));
    let probe = Rc::clone(&out);
    cluster.spawn_spmd(move |p| {
        let probe = Rc::clone(&probe);
        async move {
            let am = Am::new(&p);
            let echo = am.register(|am, msg| {
                Box::pin(async move {
                    am.reply(msg.src, msg.reply_to.expect("reply handler"), &msg.args)
                        .await;
                })
            });
            let done = am.register(|_, _| Box::pin(async {}));
            p.ctx().yield_now().await;
            if p.rank() == ProcId(0) {
                let args = [0u8; 16]; // two doubles, like Sample's exchanges
                let t0 = p.now();
                for i in 0..reps {
                    am.request_with_reply(ProcId(1), echo, done, &args).await;
                    am.poll_until_messages(i + 1).await;
                }
                *probe.borrow_mut() = p.now().since(t0).as_us() / reps as f64;
            } else {
                am.poll_until_messages(reps).await;
            }
        }
    });
    let report = cluster.run(&sim);
    assert!(report.completed_cleanly(), "am benchmark deadlocked");
    let v = *out.borrow();
    v
}

/// Measures the Figure 7 AM-store ping-pong at each size: rank 0 bulk-
/// stores `bytes` and a completion handler to rank 1, which stores back.
#[must_use]
pub fn pingpong_am_store(design: DesignPoint, sizes: &[u32], reps: u64) -> Vec<AmStorePoint> {
    sizes
        .iter()
        .map(|&bytes| {
            let rt = am_store_roundtrip_us(design, bytes, reps);
            let latency_us = rt / 2.0;
            AmStorePoint {
                bytes,
                latency_us,
                bandwidth_mbs: f64::from(bytes) / latency_us,
            }
        })
        .collect()
}

fn am_store_roundtrip_us(design: DesignPoint, bytes: u32, reps: u64) -> f64 {
    let (sim, cluster) = two_node_cluster(design);
    let out = Rc::new(RefCell::new(0.0));
    let probe = Rc::clone(&out);
    cluster.spawn_spmd(move |p| {
        let probe = Rc::clone(&probe);
        async move {
            let am = Am::new(&p);
            let landed = am.register(|_, _| Box::pin(async {}));
            let buf = p.alloc(u64::from(bytes).max(64));
            p.ctx().yield_now().await;
            let me = p.rank().0;
            let peer = ProcId(1 - me);
            if me == 0 {
                let t0 = p.now();
                for i in 0..reps {
                    am.store(peer, buf, buf, bytes, landed, &[]).await;
                    am.poll_until_messages(i + 1).await;
                }
                *probe.borrow_mut() = p.now().since(t0).as_us() / reps as f64;
            } else {
                for i in 0..reps {
                    am.poll_until_messages(i + 1).await;
                    am.store(peer, buf, buf, bytes, landed, &[]).await;
                }
            }
        }
    });
    let report = cluster.run(&sim);
    assert!(report.completed_cleanly(), "am store benchmark deadlocked");
    let v = *out.borrow();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mproxy_model::{paper_table4, ALL_DESIGN_POINTS, HW1, MP0};

    #[test]
    fn am_latency_tracks_paper_table4() {
        for d in ALL_DESIGN_POINTS {
            let rt = am_roundtrip_us(d, 16);
            let target = paper_table4(d.name).unwrap().am_rt_us;
            let err = (rt - target).abs() / target;
            assert!(
                err < 0.30,
                "{}: AM rt sim {:.1} vs paper {:.1} ({:+.0}%)",
                d.name,
                rt,
                target,
                100.0 * (rt - target) / target
            );
        }
    }

    #[test]
    fn am_latency_exceeds_put_latency() {
        // "Its latency is higher than PUT/GET because it involves handler
        // invocation on processors at both ends."
        let am = am_roundtrip_us(MP0, 8);
        let put = mproxy::micro::run_micro(MP0).put_rt_us;
        assert!(am > put, "am {am} vs put {put}");
    }

    #[test]
    fn am_store_bandwidth_grows_with_size() {
        let pts = pingpong_am_store(HW1, &[64, 1024, 16384], 4);
        assert!(pts
            .windows(2)
            .all(|w| w[0].bandwidth_mbs < w[1].bandwidth_mbs));
    }
}
