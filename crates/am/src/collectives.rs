//! The collective communication library (Section 5.1): barriers, scans,
//! reductions and broadcasts built on RMA and RQ.
//!
//! Waits optionally service an [`Am`] endpoint so that coherence layers
//! (CRL) and request/reply applications stay deadlock-free inside
//! collectives: a process blocked in a barrier keeps answering requests.

use std::cell::Cell;
use std::rc::Rc;

use mproxy::{Addr, Proc, ProcId, SyncFlag};

use crate::am::Am;

/// Rounds of the dissemination barrier / binomial trees for `n` ranks.
fn ceil_log2(n: usize) -> usize {
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

struct CollState {
    n: usize,
    rounds: usize,
    barrier_flags: Vec<SyncFlag>,
    barrier_gen: Cell<u64>,
    bcast_flag: SyncFlag,
    bcast_gen: Cell<u64>,
    gather_flag: SyncFlag,
    result_flag: SyncFlag,
    reduce_gen: Cell<u64>,
    /// 1-byte token PUT around by the barrier.
    token: Addr,
    /// `n` 8-byte slots gathered at the root.
    gather: Addr,
    /// `n` 8-byte outgoing slots at the root (per-peer, so a slot is never
    /// rewritten while an earlier PUT may still read it).
    prefix: Addr,
    /// 8-byte outgoing value.
    value: Addr,
    /// 8-byte result delivered back by the root.
    result: Addr,
}

/// Collective operations over all processes of the cluster.
///
/// Every rank must call each collective the same number of times in the
/// same order (standard SPMD discipline); flags and staging buffers are
/// allocated deterministically at construction.
#[derive(Clone)]
pub struct Coll {
    p: Proc,
    am: Option<Am>,
    st: Rc<CollState>,
}

impl Coll {
    /// Creates the collective context. Pass the process's [`Am`] endpoint
    /// if it has one, so waits keep servicing incoming requests.
    #[must_use]
    pub fn new(p: &Proc, am: Option<Am>) -> Coll {
        let n = p.nprocs();
        let rounds = if n > 1 { ceil_log2(n) } else { 0 };
        let barrier_flags = (0..rounds.max(1)).map(|_| p.new_flag()).collect();
        let bcast_flag = p.new_flag();
        let gather_flag = p.new_flag();
        let result_flag = p.new_flag();
        let token = p.alloc(8);
        let gather = p.alloc(8 * n as u64);
        let prefix = p.alloc(8 * n as u64);
        let value = p.alloc(8);
        let result = p.alloc(8);
        Coll {
            p: p.clone(),
            am,
            st: Rc::new(CollState {
                n,
                rounds,
                barrier_flags,
                barrier_gen: Cell::new(0),
                bcast_flag,
                bcast_gen: Cell::new(0),
                gather_flag,
                result_flag,
                reduce_gen: Cell::new(0),
                token,
                gather,
                prefix,
                value,
                result,
            }),
        }
    }

    /// The owning process.
    #[must_use]
    pub fn proc(&self) -> &Proc {
        &self.p
    }

    async fn wait(&self, flag: &SyncFlag, target: u64) {
        match &self.am {
            Some(am) => {
                let f = flag.clone();
                am.poll_while(|| f.count() >= target).await;
            }
            None => self.p.wait_flag(flag, target).await,
        }
    }

    /// Dissemination barrier: `ceil(log2 n)` rounds, any `n`.
    pub async fn barrier(&self) {
        let st = &self.st;
        if st.n == 1 {
            return;
        }
        let gen = st.barrier_gen.get() + 1;
        st.barrier_gen.set(gen);
        let me = self.p.rank().0 as usize;
        for r in 0..st.rounds {
            let peer = ProcId(((me + (1 << r)) % st.n) as u32);
            let rflag = self.p.remote_flag(peer, st.barrier_flags[r].id());
            self.p
                .put(st.token, peer.into(), st.token, 1, None, Some(rflag))
                .await
                .expect("barrier put failed");
            self.wait(&st.barrier_flags[r], gen).await;
        }
    }

    /// Binomial-tree broadcast of `nbytes` at symmetric address `addr`
    /// from `root` to every rank.
    pub async fn broadcast(&self, root: ProcId, addr: Addr, nbytes: u32) {
        let st = &self.st;
        if st.n == 1 {
            return;
        }
        let gen = st.bcast_gen.get() + 1;
        st.bcast_gen.set(gen);
        let me = self.p.rank().0 as usize;
        let rel = (me + st.n - root.0 as usize) % st.n;
        if rel != 0 {
            self.wait(&st.bcast_flag, gen).await;
        }
        for r in 0..st.rounds {
            if rel < (1 << r) && rel + (1 << r) < st.n {
                let peer = ProcId(((rel + (1 << r) + root.0 as usize) % st.n) as u32);
                let rflag = self.p.remote_flag(peer, st.bcast_flag.id());
                self.p
                    .put(addr, peer.into(), addr, nbytes, None, Some(rflag))
                    .await
                    .expect("broadcast put failed");
            }
        }
    }

    /// All-reduce over one `f64` per rank: values are gathered at rank 0
    /// (combined in rank order, so non-associative effects are
    /// deterministic), and the result is broadcast back.
    pub async fn allreduce_f64(&self, v: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        let st = &self.st;
        if st.n == 1 {
            return v;
        }
        let gen = st.reduce_gen.get() + 1;
        st.reduce_gen.set(gen);
        let me = self.p.rank().0 as usize;
        self.p.with_mem_mut(|m| m.write_f64(st.value, v));
        let root = ProcId(0);
        if me != 0 {
            let slot = st.gather.index(me as u64, 8);
            let rflag = self.p.remote_flag(root, st.gather_flag.id());
            self.p
                .put(st.value, root.into(), slot, 8, None, Some(rflag))
                .await
                .expect("reduce put failed");
            self.wait(&st.result_flag, gen).await;
            return self.p.read_f64(st.result);
        }
        // Root: wait for n-1 contributions of this generation.
        self.wait(&st.gather_flag, gen * (st.n as u64 - 1)).await;
        let mut acc = v;
        for r in 1..st.n {
            acc = op(acc, self.p.read_f64(st.gather.index(r as u64, 8)));
        }
        self.p.with_mem_mut(|m| m.write_f64(st.result, acc));
        for r in 1..st.n {
            let peer = ProcId(r as u32);
            let rflag = self.p.remote_flag(peer, st.result_flag.id());
            self.p
                .put(st.result, peer.into(), st.result, 8, None, Some(rflag))
                .await
                .expect("reduce result put failed");
        }
        acc
    }

    /// All-reduce sum.
    pub async fn allreduce_sum(&self, v: f64) -> f64 {
        self.allreduce_f64(v, |a, b| a + b).await
    }

    /// All-reduce max.
    pub async fn allreduce_max(&self, v: f64) -> f64 {
        self.allreduce_f64(v, f64::max).await
    }

    /// Exclusive prefix sum of one `u64` per rank (rank 0 gets 0).
    pub async fn exscan_sum_u64(&self, v: u64) -> u64 {
        let st = &self.st;
        if st.n == 1 {
            return 0;
        }
        let gen = st.reduce_gen.get() + 1;
        st.reduce_gen.set(gen);
        let me = self.p.rank().0 as usize;
        self.p.with_mem_mut(|m| m.write_u64(st.value, v));
        let root = ProcId(0);
        if me != 0 {
            let slot = st.gather.index(me as u64, 8);
            let rflag = self.p.remote_flag(root, st.gather_flag.id());
            self.p
                .put(st.value, root.into(), slot, 8, None, Some(rflag))
                .await
                .expect("scan put failed");
            self.wait(&st.result_flag, gen).await;
            return self.p.read_u64(st.result);
        }
        self.wait(&st.gather_flag, gen * (st.n as u64 - 1)).await;
        let mut acc = v;
        for r in 1..st.n {
            let x = self.p.read_u64(st.gather.index(r as u64, 8));
            // Send the prefix *excluding* rank r's own value, from a
            // per-peer slot (the proxy reads the source lazily).
            let peer = ProcId(r as u32);
            let slot = st.prefix.index(r as u64, 8);
            self.p.with_mem_mut(|m| m.write_u64(slot, acc));
            let rflag = self.p.remote_flag(peer, st.result_flag.id());
            self.p
                .put(slot, peer.into(), st.result, 8, None, Some(rflag))
                .await
                .expect("scan result put failed");
            acc += x;
        }
        0
    }
}

impl std::fmt::Debug for Coll {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coll")
            .field("proc", &self.p.rank())
            .field("n", &self.st.n)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mproxy::{Cluster, ClusterSpec};
    use mproxy_des::Simulation;
    use mproxy_model::{ALL_DESIGN_POINTS, MP1};
    use std::cell::RefCell;

    fn run_collective<F, Fut>(design: mproxy_model::DesignPoint, n: usize, body: F)
    where
        F: Fn(Proc, Coll) -> Fut,
        Fut: std::future::Future<Output = ()> + 'static,
    {
        let sim = Simulation::new();
        let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(design, n, 1)).unwrap();
        cluster.spawn_spmd(move |p| {
            let coll = Coll::new(&p, None);
            body(p, coll)
        });
        let report = cluster.run(&sim);
        assert!(report.completed_cleanly(), "collective deadlocked");
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(16), 4);
    }

    #[test]
    fn barrier_synchronizes_uneven_arrivals() {
        let times = Rc::new(RefCell::new(Vec::new()));
        let probe = Rc::clone(&times);
        run_collective(MP1, 4, move |p, coll| {
            let probe = Rc::clone(&probe);
            async move {
                // Rank r arrives 50r µs late; all must leave together.
                p.compute_us(50.0 * f64::from(p.rank().0)).await;
                coll.barrier().await;
                probe.borrow_mut().push(p.now().as_us());
            }
        });
        let times = times.borrow();
        assert_eq!(times.len(), 4);
        let min = times.iter().cloned().fold(f64::MAX, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(min >= 150.0, "nobody may leave before the slowest arrives");
        assert!(max - min < 120.0, "exit skew too large: {times:?}");
    }

    #[test]
    fn repeated_barriers_stay_in_step() {
        run_collective(MP1, 3, |p, coll| async move {
            for gen in 0..5u32 {
                p.compute_us(f64::from((p.rank().0 * 7 + gen) % 11)).await;
                coll.barrier().await;
            }
        });
    }

    #[test]
    fn broadcast_delivers_payload_from_any_root() {
        for root in [0u32, 2] {
            let seen = Rc::new(RefCell::new(Vec::new()));
            let probe = Rc::clone(&seen);
            run_collective(MP1, 5, move |p, coll| {
                let probe = Rc::clone(&probe);
                async move {
                    let buf = p.alloc(16);
                    if p.rank().0 == root {
                        p.write_u64(buf, 0xfeed + u64::from(root));
                    }
                    p.ctx().yield_now().await;
                    coll.broadcast(ProcId(root), buf, 16).await;
                    probe.borrow_mut().push(p.read_u64(buf));
                }
            });
            let seen = seen.borrow();
            assert_eq!(seen.len(), 5);
            assert!(seen.iter().all(|&v| v == 0xfeed + u64::from(root)));
        }
    }

    #[test]
    fn allreduce_sum_and_max_across_design_points() {
        for d in ALL_DESIGN_POINTS {
            let sums = Rc::new(RefCell::new(Vec::new()));
            let probe = Rc::clone(&sums);
            run_collective(d, 4, move |p, coll| {
                let probe = Rc::clone(&probe);
                async move {
                    let v = f64::from(p.rank().0 + 1);
                    let s = coll.allreduce_sum(v).await;
                    let m = coll.allreduce_max(v).await;
                    probe.borrow_mut().push((s, m));
                }
            });
            for &(s, m) in sums.borrow().iter() {
                assert_eq!(s, 10.0, "{}", d.name);
                assert_eq!(m, 4.0, "{}", d.name);
            }
        }
    }

    #[test]
    fn exscan_is_exclusive_prefix_sum() {
        let out = Rc::new(RefCell::new(Vec::new()));
        let probe = Rc::clone(&out);
        run_collective(MP1, 6, move |p, coll| {
            let probe = Rc::clone(&probe);
            async move {
                let v = u64::from(p.rank().0) + 1; // 1,2,3,4,5,6
                let s = coll.exscan_sum_u64(v).await;
                probe.borrow_mut().push((p.rank().0, s));
            }
        });
        let mut out = out.borrow().clone();
        out.sort();
        assert_eq!(out, vec![(0, 0), (1, 1), (2, 3), (3, 6), (4, 10), (5, 15)]);
    }

    #[test]
    fn single_process_collectives_are_noops() {
        run_collective(MP1, 1, |_, coll| async move {
            coll.barrier().await;
            coll.broadcast(ProcId(0), Addr(0), 1).await;
            assert_eq!(coll.allreduce_sum(3.5).await, 3.5);
            assert_eq!(coll.exscan_sum_u64(9).await, 0);
        });
    }
}
