//! The Active Message endpoint.
//!
//! Requests and replies are ENQ operations into the peer's request queue;
//! handlers run on the *compute* processor when the application polls —
//! "message handlers are naturally atomic since there are no
//! interrupt-driven handlers that may execute at arbitrary instances"
//! (Section 4). Bulk store is a PUT followed by an ENQ whose handler fires
//! after the data has landed (ordering is preserved per source→destination
//! path); bulk get is a GET polled to completion.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use bytes::Bytes;
use mproxy::{Addr, Proc, ProcId, RemoteQueue, RqId};
use mproxy_model::Arch;

/// Per-message AM-library costs on the compute processor, beyond the raw
/// ENQ/DEQ primitives: request/reply matching, credit management and
/// handler scheduling on send; queue scan and handler upcall on receive.
/// Under system-call communication the receive path costs an extra pair of
/// kernel crossings (the user cannot touch the kernel's queue directly).
/// Values are calibrated against Table 4's AM-latency row; see
/// EXPERIMENTS.md.
fn am_layer_costs(arch: Arch) -> (f64, f64) {
    match arch {
        Arch::MessageProxy => (4.2, 5.6),
        Arch::CustomHardware => (2.8, 3.9),
        Arch::SystemCall => (11.5, 17.2),
    }
}

/// Identifies a registered handler. Registration order is deterministic,
/// so SPMD processes registering the same handlers in the same order can
/// name each other's handlers by id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HandlerId(pub u16);

const NO_REPLY: u16 = u16::MAX;

/// A received active message.
#[derive(Debug, Clone)]
pub struct AmMsg {
    /// The requesting process.
    pub src: ProcId,
    /// Handler the sender asked to be invoked on the reply, if any.
    pub reply_to: Option<HandlerId>,
    /// Argument bytes.
    pub args: Bytes,
}

type HandlerFut = Pin<Box<dyn Future<Output = ()>>>;
type HandlerFn = Box<dyn Fn(Am, AmMsg) -> HandlerFut>;

/// Slots in the outgoing staging ring (bounds concurrent in-flight
/// requests whose payload has not yet been read by the proxy).
const STAGING_SLOTS: u64 = 64;
/// Maximum argument bytes per active message.
pub(crate) const MAX_ARGS: u64 = 240;
const HDR: u64 = 8;

struct AmState {
    rq: RqId,
    handlers: RefCell<Vec<HandlerFn>>,
    staging: Addr,
    next_slot: Cell<u64>,
    handled: Cell<u64>,
    sent: Cell<u64>,
}

/// A per-process Active Message endpoint.
///
/// Cheap to clone; clones share the endpoint. See the crate docs for an
/// example.
#[derive(Clone)]
pub struct Am {
    p: Proc,
    st: Rc<AmState>,
}

impl Am {
    /// Creates the endpoint: allocates the request queue and staging ring
    /// (deterministic allocation order across SPMD ranks).
    #[must_use]
    pub fn new(p: &Proc) -> Am {
        let rq = p.new_queue();
        let staging = p.alloc(STAGING_SLOTS * (HDR + MAX_ARGS));
        Am {
            p: p.clone(),
            st: Rc::new(AmState {
                rq,
                handlers: RefCell::new(Vec::new()),
                staging,
                next_slot: Cell::new(0),
                handled: Cell::new(0),
                sent: Cell::new(0),
            }),
        }
    }

    /// The process this endpoint belongs to.
    #[must_use]
    pub fn proc(&self) -> &Proc {
        &self.p
    }

    /// Registers a handler; ids are assigned in registration order.
    pub fn register(&self, f: impl Fn(Am, AmMsg) -> HandlerFut + 'static) -> HandlerId {
        let mut hs = self.st.handlers.borrow_mut();
        let id = HandlerId(u16::try_from(hs.len()).expect("too many handlers"));
        hs.push(Box::new(f));
        id
    }

    /// Messages handled so far by this endpoint.
    #[must_use]
    pub fn handled(&self) -> u64 {
        self.st.handled.get()
    }

    /// Requests sent so far (requests + replies).
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.st.sent.get()
    }

    /// `am_request`: invoke `handler` at `dst` with `args`.
    ///
    /// # Panics
    ///
    /// Panics if `args` exceeds the per-message maximum (240 bytes) or the
    /// destination is invalid.
    pub async fn request(&self, dst: ProcId, handler: HandlerId, args: &[u8]) {
        self.send(dst, handler, None, args).await;
    }

    /// `am_request` that also names the handler the callee should invoke
    /// on its reply.
    pub async fn request_with_reply(
        &self,
        dst: ProcId,
        handler: HandlerId,
        reply_handler: HandlerId,
        args: &[u8],
    ) {
        self.send(dst, handler, Some(reply_handler), args).await;
    }

    /// `am_reply`: invoke `handler` at the requester with `args`.
    pub async fn reply(&self, dst: ProcId, handler: HandlerId, args: &[u8]) {
        self.send(dst, handler, None, args).await;
    }

    async fn send(
        &self,
        dst: ProcId,
        handler: HandlerId,
        reply_to: Option<HandlerId>,
        args: &[u8],
    ) {
        assert!(
            args.len() as u64 <= MAX_ARGS,
            "active-message args exceed {MAX_ARGS} bytes"
        );
        let slot = self.st.next_slot.get();
        self.st.next_slot.set((slot + 1) % STAGING_SLOTS);
        let base = self.st.staging.offset(slot * (HDR + MAX_ARGS));
        let mut buf = Vec::with_capacity(HDR as usize + args.len());
        buf.extend_from_slice(&handler.0.to_le_bytes());
        buf.extend_from_slice(&reply_to.map_or(NO_REPLY, |h| h.0).to_le_bytes());
        buf.extend_from_slice(&self.p.rank().0.to_le_bytes());
        buf.extend_from_slice(args);
        self.p.write_bytes(base, &buf);
        self.st.sent.set(self.st.sent.get() + 1);
        let (send_us, _) = am_layer_costs(self.p.design().arch);
        self.p.compute_us(send_us).await;
        self.p
            .enq(
                base,
                RemoteQueue {
                    proc: dst,
                    rq: self.st.rq,
                },
                buf.len() as u32,
                None,
                None,
            )
            .await
            .expect("am send failed");
    }

    /// Polls the request queue once; if a message is present, dispatches
    /// its handler (charging the dispatch cost on this processor).
    /// Returns true if a message was handled.
    pub async fn poll(&self) -> bool {
        let Some(raw) = self.p.rq_poll(self.st.rq).await else {
            return false;
        };
        self.dispatch(raw).await;
        true
    }

    /// Polls until this endpoint has handled at least `target` messages in
    /// total (see [`Am::handled`]).
    pub async fn poll_until_messages(&self, target: u64) {
        while self.st.handled.get() < target {
            self.poll().await;
        }
    }

    /// Polls while `done` stays false — the generic "wait for something,
    /// keep servicing requests" loop every higher layer uses to stay
    /// deadlock-free.
    pub async fn poll_while(&self, done: impl Fn() -> bool) {
        while !done() {
            self.poll().await;
        }
    }

    async fn dispatch(&self, raw: Bytes) {
        assert!(raw.len() >= HDR as usize, "malformed active message");
        let handler = u16::from_le_bytes([raw[0], raw[1]]);
        let reply = u16::from_le_bytes([raw[2], raw[3]]);
        let src = ProcId(u32::from_le_bytes([raw[4], raw[5], raw[6], raw[7]]));
        let msg = AmMsg {
            src,
            reply_to: (reply != NO_REPLY).then_some(HandlerId(reply)),
            args: raw.slice(HDR as usize..),
        };
        // Queue scan, handler-table lookup, argument marshalling (and the
        // kernel upcall under system-call communication).
        let (_, recv_us) = am_layer_costs(self.p.design().arch);
        self.p.compute_us(recv_us).await;
        let fut = {
            let hs = self.st.handlers.borrow();
            let f = hs
                .get(handler as usize)
                .unwrap_or_else(|| panic!("no handler {handler} registered"));
            f(self.clone(), msg)
        };
        fut.await;
        self.st.handled.set(self.st.handled.get() + 1);
    }

    /// `am_store`: PUT `nbytes` from `laddr` into `raddr` at `dst`, then
    /// invoke `handler` there with `args` once the data has landed
    /// (delivery order is preserved along one source→destination path).
    pub async fn store(
        &self,
        dst: ProcId,
        laddr: Addr,
        raddr: Addr,
        nbytes: u32,
        handler: HandlerId,
        args: &[u8],
    ) {
        self.p
            .put(laddr, dst.into(), raddr, nbytes, None, None)
            .await
            .expect("am_store put failed");
        self.send(dst, handler, None, args).await;
    }

    /// `am_get`: GET `nbytes` from `raddr` at `dst` into `laddr`, polling
    /// (and servicing incoming requests) until the data has landed.
    pub async fn get_bulk(&self, dst: ProcId, laddr: Addr, raddr: Addr, nbytes: u32) {
        let flag = self.p.new_flag();
        self.p
            .get(laddr, dst.into(), raddr, nbytes, Some(&flag), None)
            .await
            .expect("am_get failed");
        let counter = flag.clone();
        self.poll_while(|| counter.count() >= 1).await;
    }
}

impl std::fmt::Debug for Am {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Am")
            .field("proc", &self.p.rank())
            .field("handled", &self.handled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mproxy::{Cluster, ClusterSpec};
    use mproxy_des::Simulation;
    use mproxy_model::MP1;
    use std::cell::RefCell;

    fn run_pair(body: impl Fn(Am) -> HandlerFut + 'static) {
        let sim = Simulation::new();
        let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(MP1, 2, 1)).unwrap();
        let body = Rc::new(body);
        cluster.spawn_spmd(move |p| {
            let body = Rc::clone(&body);
            async move {
                let am = Am::new(&p);
                p.ctx().yield_now().await;
                if p.rank().0 == 0 {
                    body(am).await;
                }
            }
        });
        assert!(cluster.run(&sim).completed_cleanly());
    }

    #[test]
    fn self_request_is_delivered_through_own_queue() {
        run_pair(|am| {
            Box::pin(async move {
                let count = Rc::new(std::cell::Cell::new(0u32));
                let probe = Rc::clone(&count);
                let h = am.register(move |_, msg| {
                    let probe = Rc::clone(&probe);
                    Box::pin(async move {
                        assert_eq!(&msg.args[..], b"self");
                        probe.set(probe.get() + 1);
                    })
                });
                let me = am.proc().rank();
                am.request(me, h, b"self").await;
                am.poll_until_messages(1).await;
                assert_eq!(count.get(), 1);
            })
        });
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversized_args_panic() {
        run_pair(|am| {
            Box::pin(async move {
                let h = am.register(|_, _| Box::pin(async {}));
                let big = vec![0u8; 500];
                let me = am.proc().rank();
                am.request(me, h, &big).await;
            })
        });
    }

    #[test]
    fn sent_and_handled_counters_advance() {
        let sim = Simulation::new();
        let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(MP1, 2, 1)).unwrap();
        let counts = Rc::new(RefCell::new((0u64, 0u64)));
        let probe = Rc::clone(&counts);
        cluster.spawn_spmd(move |p| {
            let probe = Rc::clone(&probe);
            async move {
                let am = Am::new(&p);
                let h = am.register(|_, _| Box::pin(async {}));
                p.ctx().yield_now().await;
                if p.rank().0 == 0 {
                    for _ in 0..5 {
                        am.request(ProcId(1), h, &[1, 2, 3]).await;
                    }
                    *probe.borrow_mut() = (am.sent(), am.handled());
                } else {
                    am.poll_until_messages(5).await;
                    assert_eq!(am.handled(), 5);
                }
            }
        });
        assert!(cluster.run(&sim).completed_cleanly());
        assert_eq!(counts.borrow().0, 5);
    }

    #[test]
    fn store_orders_data_before_handler() {
        // am_store's handler must observe the PUT data already in place.
        let sim = Simulation::new();
        let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(MP1, 2, 1)).unwrap();
        cluster.spawn_spmd(move |p| async move {
            let am = Am::new(&p);
            let buf = p.alloc(256);
            let me = p.clone();
            let h = am.register(move |_, _| {
                let me = me.clone();
                let buf = buf;
                Box::pin(async move {
                    // Data landed before the notification fired.
                    assert_eq!(me.read_u64(buf), 0x1122_3344);
                })
            });
            p.ctx().yield_now().await;
            if p.rank().0 == 0 {
                p.write_u64(buf.offset(128), 0x1122_3344);
                am.store(ProcId(1), buf.offset(128), buf, 8, h, &[]).await;
            } else {
                am.poll_until_messages(1).await;
            }
        });
        assert!(cluster.run(&sim).completed_cleanly());
    }
}
