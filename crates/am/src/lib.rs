//! # mproxy-am — Active Messages and collectives over RMA/RQ
//!
//! Section 5.1 of the paper: "We implement an Active Message (AM) layer on
//! top of RMA and RQ. It uses RQ primitives to enqueue active-message
//! requests (`am_request`) and replies (`am_reply`), and both RQ and RMA
//! primitives to implement active-message bulk store (`am_store`) and bulk
//! get (`am_get`) operations. ... We also provide a collective
//! communication library based on RMA and RQ that implements barriers,
//! scans, and reductions."
//!
//! This crate is exactly that stack: [`Am`] is the per-process active
//! message endpoint, [`Coll`] the collective library used by the
//! application suite.
//!
//! # Examples
//!
//! A two-process echo: rank 1 registers a handler that replies; rank 0
//! requests and polls for the reply.
//!
//! ```
//! use mproxy::{Cluster, ClusterSpec, ProcId};
//! use mproxy_am::Am;
//! use mproxy_des::Simulation;
//! use mproxy_model::MP1;
//!
//! let sim = Simulation::new();
//! let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(MP1, 2, 1)).unwrap();
//! cluster.spawn_spmd(|p| async move {
//!     let am = Am::new(&p);
//!     let echo = am.register(|am, msg| {
//!         Box::pin(async move {
//!             am.reply(msg.src, msg.reply_to.unwrap(), &msg.args).await;
//!         })
//!     });
//!     let ok = am.register(|_, _| Box::pin(async {}));
//!     p.ctx().yield_now().await;
//!     if p.rank() == ProcId(0) {
//!         am.request_with_reply(ProcId(1), echo, ok, b"hi").await;
//!         am.poll_until_messages(1).await;
//!     } else {
//!         am.poll_until_messages(1).await;
//!     }
//! });
//! assert!(cluster.run(&sim).completed_cleanly());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod am;
mod collectives;
pub mod micro;

pub use am::{Am, AmMsg, HandlerId};
pub use collectives::Coll;
