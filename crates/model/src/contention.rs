//! Message-proxy contention analysis — Section 5.4.
//!
//! A single proxy serves every compute processor on its node. The paper
//! applies "a simple queuing model analysis \[which\] indicates that the
//! utilization of a communication agent should be below 50% for stable
//! behavior", predicts from the Table 6 utilisations that one proxy supports
//! two compute processors for all applications but saturates at four for the
//! five communication-intensive ones, and derives the compute-or-communicate
//! rule: on `P`-processor SMPs, dedicate a proxy whenever it beats
//! system-level communication by more than `P/(P−1)`.


/// Stability threshold for a communication agent's utilisation (§5.4).
pub const STABLE_UTILIZATION: f64 = 0.5;

/// Offered utilisation of an agent given a per-processor message rate
/// (operations per millisecond) and a mean per-operation service time (µs),
/// summed over `procs` equally loaded compute processors.
///
/// # Examples
///
/// ```
/// use mproxy_model::contention::utilization;
///
/// // 14.48 ops/ms (Wator on MP1) at ~17.7 µs of proxy time each:
/// let u = utilization(14.48, 17.7, 1);
/// assert!((u - 0.256).abs() < 0.01); // Table 6 reports 25.7%
/// ```
#[must_use]
pub fn utilization(rate_per_ms: f64, service_us: f64, procs: usize) -> f64 {
    rate_per_ms * service_us / 1_000.0 * procs as f64
}

/// True if an agent at utilisation `rho` is in the stable regime.
#[must_use]
pub fn is_stable(rho: f64) -> bool {
    rho < STABLE_UTILIZATION
}

/// Largest number of equally loaded compute processors one proxy supports
/// while staying stable, given the utilisation one processor induces.
///
/// Returns `usize::MAX` when a single processor's load rounds to zero.
///
/// # Examples
///
/// ```
/// use mproxy_model::contention::max_supported_procs;
///
/// // LU on 16 processors puts ~25.7%/proc... a proxy at 20% per processor
/// // supports 2 processors (0.4 < 0.5) but not 3 (0.6).
/// assert_eq!(max_supported_procs(0.20), 2);
/// ```
#[must_use]
pub fn max_supported_procs(per_proc_utilization: f64) -> usize {
    if per_proc_utilization <= 0.0 {
        return usize::MAX;
    }
    let n = (STABLE_UTILIZATION / per_proc_utilization).floor();
    if n >= usize::MAX as f64 {
        usize::MAX
    } else {
        n as usize
    }
}

/// Expected queueing delay (µs) at an M/M/1 server with mean service time
/// `service_us` and utilisation `rho` — the "simple queuing model" behind
/// the 50% rule: delay doubles service time at ρ = 0.5 and diverges as
/// ρ → 1.
///
/// Returns infinity for `rho >= 1`.
#[must_use]
pub fn mm1_wait_us(service_us: f64, rho: f64) -> f64 {
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    if rho <= 0.0 {
        return 0.0;
    }
    service_us * rho / (1.0 - rho)
}

/// The §5.4 compute-or-communicate decision on a `smp_procs`-processor SMP
/// node.
///
/// Dedicating one of `P` processors to a proxy costs a factor `P/(P−1)` of
/// raw compute; it pays off whenever the proxy's communication speedup over
/// system-level communication exceeds that factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProxyTradeoff {
    /// Processors per SMP node.
    pub smp_procs: usize,
    /// Application execution time under system-call communication using all
    /// `P` processors for compute.
    pub syscall_time: f64,
    /// Application execution time under a message proxy using `P − 1`
    /// compute processors.
    pub proxy_time: f64,
}

impl ProxyTradeoff {
    /// The break-even factor `P/(P−1)`.
    ///
    /// # Panics
    ///
    /// Panics if `smp_procs < 2` (a proxy needs a processor to spare).
    #[must_use]
    pub fn break_even_factor(&self) -> f64 {
        assert!(self.smp_procs >= 2, "need at least two processors per node");
        self.smp_procs as f64 / (self.smp_procs - 1) as f64
    }

    /// True if dedicating a proxy processor is the better use of silicon:
    /// the observed improvement exceeds `P/(P−1)`.
    #[must_use]
    pub fn proxy_wins(&self) -> bool {
        self.syscall_time / self.proxy_time > self.break_even_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_scales_linearly() {
        let one = utilization(10.0, 20.0, 1);
        assert!((one - 0.2).abs() < 1e-12);
        assert!((utilization(10.0, 20.0, 4) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn stability_threshold_is_half() {
        assert!(is_stable(0.49));
        assert!(!is_stable(0.5));
        assert!(!is_stable(0.9));
    }

    #[test]
    fn paper_prediction_two_yes_four_no() {
        // §5.4: "a message proxy can support two compute processors for all
        // the applications, but will be over-utilized for four compute
        // processors in LU, Barnes-Hut, Water, Sample and Wator."
        // Wator's Table 6 MP1 utilisation is 25.7% for one processor's load
        // spread over 16 procs... i.e. per-proc ≈ 25.7%/proc at rate 14.48.
        let per_proc = 0.257;
        assert!(max_supported_procs(per_proc) >= 1);
        assert!(max_supported_procs(per_proc) < 4);
        // A light app (P-Ray: 1.9%) supports far more than four.
        assert!(max_supported_procs(0.019) >= 4);
    }

    #[test]
    fn zero_load_supports_unbounded_procs() {
        assert_eq!(max_supported_procs(0.0), usize::MAX);
    }

    #[test]
    fn mm1_wait_behaviour() {
        assert_eq!(mm1_wait_us(10.0, 0.0), 0.0);
        assert!((mm1_wait_us(10.0, 0.5) - 10.0).abs() < 1e-12);
        assert!(mm1_wait_us(10.0, 0.9) > 80.0);
        assert!(mm1_wait_us(10.0, 1.0).is_infinite());
    }

    #[test]
    fn proxy_tradeoff_break_even() {
        let t = ProxyTradeoff {
            smp_procs: 5,
            syscall_time: 130.0,
            proxy_time: 100.0,
        };
        // 5-processor nodes: break-even 1.25; 30% gain wins.
        assert!((t.break_even_factor() - 1.25).abs() < 1e-12);
        assert!(t.proxy_wins());
        let marginal = ProxyTradeoff {
            smp_procs: 2,
            syscall_time: 130.0,
            proxy_time: 100.0,
        };
        // 2-processor nodes: break-even 2.0; 30% gain loses.
        assert!(!marginal.proxy_wins());
    }

    #[test]
    #[should_panic(expected = "two processors")]
    fn uniprocessor_tradeoff_panics() {
        let t = ProxyTradeoff {
            smp_procs: 1,
            syscall_time: 1.0,
            proxy_time: 1.0,
        };
        let _ = t.break_even_factor();
    }
}
