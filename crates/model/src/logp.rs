//! LogGP parameter extraction.
//!
//! The LogGP model (Alexandrov et al.) summarises a communication system
//! by latency `L`, per-message overhead `o`, gap `g`, and per-byte gap
//! `G`. It is the lingua franca for comparing systems like the paper's
//! design points: a message proxy trades a larger `L` for an `o` close to
//! custom hardware's — exactly the §5.3 argument that overhead, not
//! latency, drives application performance. This module fits LogGP
//! parameters from the measurements the micro-benchmarks already produce.


/// Fitted LogGP parameters (µs; `big_g` in µs/byte).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogGp {
    /// End-to-end small-message latency minus both overheads.
    pub l_us: f64,
    /// Per-message processor overhead (send + receive averaged).
    pub o_us: f64,
    /// Minimum inter-message gap (1 / small-message rate).
    pub g_us: f64,
    /// Per-byte gap — the inverse of the saturated bandwidth.
    pub big_g_us_per_byte: f64,
}

impl LogGp {
    /// Predicted one-way time of an `n`-byte message under LogGP:
    /// `o + (n-1)·G + L + o`.
    #[must_use]
    pub fn one_way_us(&self, nbytes: u32) -> f64 {
        2.0 * self.o_us + self.l_us + (f64::from(nbytes.max(1)) - 1.0) * self.big_g_us_per_byte
    }

    /// Predicted saturated bandwidth, MB/s.
    #[must_use]
    pub fn peak_bandwidth_mbs(&self) -> f64 {
        1.0 / self.big_g_us_per_byte.max(1e-12)
    }
}

/// Fits LogGP from four standard measurements:
///
/// * `small_one_way_us` — one-way latency of a minimal message;
/// * `overhead_us` — processor overhead of submitting + completing one
///   operation (Table 4's "PUT+sync ovh");
/// * `small_gap_us` — inverse throughput of back-to-back minimal messages;
/// * `(big_bytes, big_one_way_us)` — one large-message one-way time.
///
/// # Examples
///
/// ```
/// use mproxy_model::logp::fit;
///
/// // MP1-like numbers: 13 µs one-way, 3 µs overhead, 7 µs gap,
/// // 256 KiB in 3160 µs.
/// let p = fit(13.0, 3.0, 7.0, 262_144, 3160.0);
/// assert!((p.o_us - 1.5).abs() < 1e-9);       // split across both ends
/// assert!(p.l_us > 0.0);
/// assert!((p.peak_bandwidth_mbs() - 83.2).abs() < 1.0);
/// ```
#[must_use]
pub fn fit(
    small_one_way_us: f64,
    overhead_us: f64,
    small_gap_us: f64,
    big_bytes: u32,
    big_one_way_us: f64,
) -> LogGp {
    // Overheads are reported as a single submit+complete figure; LogGP
    // charges `o` at each end.
    let o = overhead_us / 2.0;
    let l = (small_one_way_us - 2.0 * o).max(0.0);
    // G from the incremental cost of the large message over the small one.
    let big_g =
        ((big_one_way_us - small_one_way_us) / f64::from(big_bytes.max(2) - 1)).max(0.0);
    LogGp {
        l_us: l,
        o_us: o,
        g_us: small_gap_us,
        big_g_us_per_byte: big_g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_synthetic_parameters() {
        let truth = LogGp {
            l_us: 10.0,
            o_us: 1.5,
            g_us: 7.0,
            big_g_us_per_byte: 0.0125,
        };
        let small = truth.one_way_us(1);
        let big = truth.one_way_us(65536);
        let fitted = fit(small, 2.0 * truth.o_us, truth.g_us, 65536, big);
        assert!((fitted.l_us - truth.l_us).abs() < 1e-9);
        assert!((fitted.o_us - truth.o_us).abs() < 1e-9);
        assert!((fitted.big_g_us_per_byte - truth.big_g_us_per_byte).abs() < 1e-9);
        assert!((fitted.peak_bandwidth_mbs() - 80.0).abs() < 0.1);
    }

    #[test]
    fn degenerate_inputs_clamp_to_zero() {
        let p = fit(1.0, 10.0, 5.0, 4, 0.5);
        assert_eq!(p.l_us, 0.0);
        assert_eq!(p.big_g_us_per_byte, 0.0);
    }

    #[test]
    fn proxy_trades_latency_for_overhead() {
        // The §5.3 story in LogGP terms: fit HW1-ish and MP1-ish numbers
        // and compare.
        let hw = fit(5.3, 1.5, 4.0, 262_144, 1755.0);
        let mp = fit(13.0, 3.0, 7.0, 262_144, 3160.0);
        assert!(mp.l_us > 2.0 * hw.l_us, "proxy latency much larger");
        assert!(mp.o_us <= 2.0 * hw.o_us, "proxy overhead comparable");
    }
}
