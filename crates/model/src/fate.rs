//! The seeded fate-decision core shared by every fault injector.
//!
//! Two injectors exist in the workspace: `mproxy-simnet`'s [`FaultPlan`]
//! (simulated time, discrete-event order) and `mproxy-rt`'s
//! [`RtFaultPlan`] (wall-clock time, real threads). Both must mean the
//! *same thing* by "drop 1% of packets, seed 42": the same RNG, the same
//! per-packet draw discipline, the same probability validation, the same
//! window arithmetic. This module is that common core — a [`SplitMix64`]
//! stream, the [`PacketFates`] Bernoulli specification with its
//! fixed-arity [`PacketFates::judge`] draw, and the half-open window
//! helpers — so a plan ported between the simulator and the native
//! runtime keeps its semantics, only its notion of time changes.
//!
//! [`FaultPlan`]: https://docs.rs/mproxy-simnet
//! [`RtFaultPlan`]: https://docs.rs/mproxy-rt

/// SplitMix64 — tiny seeded generator with a well-distributed stream.
///
/// Every fault injector in the workspace draws from this generator so a
/// seed identifies one fault stream regardless of which engine runs it.
///
/// # Examples
///
/// ```
/// use mproxy_model::fate::SplitMix64;
///
/// let (mut a, mut b) = (SplitMix64::new(7), SplitMix64::new(7));
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed` (any value, including zero).
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Validates a probability and returns it.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn check_probability(p: f64, what: &str) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "{what} probability {p} not in [0, 1]"
    );
    p
}

/// True if the half-open windows `[s1, e1)` and `[s2, e2)` share any
/// instant. Both injectors reject overlapping windows on one node with
/// this test — two overlapping stall windows have no coherent meaning.
#[must_use]
pub fn windows_overlap(s1: f64, e1: f64, s2: f64, e2: f64) -> bool {
    s1 < e2 && s2 < e1
}

/// Per-packet Bernoulli fault specification: the independent
/// probabilities a transmitted packet is dropped, duplicated, reordered
/// or corrupted. Time-domain faults (stalls, crashes, kills) stay with
/// the engine-specific plan — only the per-packet draw lives here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketFates {
    /// Probability a packet is silently lost.
    pub drop_p: f64,
    /// Probability a packet is delivered twice.
    pub dup_p: f64,
    /// Probability a packet is delayed past later traffic (meaningful
    /// only on transports that can reorder; FIFO transports leave it 0).
    pub reorder_p: f64,
    /// Probability a packet's payload arrives corrupted.
    pub corrupt_p: f64,
    /// Extra transit delay, µs, applied to reordered packets (scaled by
    /// a per-packet jitter draw in `[0.25, 1.25)`).
    pub reorder_extra_us: f64,
}

impl Default for PacketFates {
    fn default() -> Self {
        PacketFates::NONE
    }
}

impl PacketFates {
    /// No packet faults at all.
    pub const NONE: PacketFates = PacketFates {
        drop_p: 0.0,
        dup_p: 0.0,
        reorder_p: 0.0,
        corrupt_p: 0.0,
        reorder_extra_us: 20.0,
    };

    /// True if every probability is zero.
    #[must_use]
    pub fn is_benign(&self) -> bool {
        self.drop_p == 0.0
            && self.dup_p == 0.0
            && self.reorder_p == 0.0
            && self.corrupt_p == 0.0
    }

    /// Judges one packet, always consuming exactly five variates from
    /// `rng` so the stream position depends only on how many packets
    /// were judged — never on which probabilities are set. This is the
    /// discipline that makes "same seed, same fates" hold across plans
    /// that differ only in rates.
    pub fn judge(&self, rng: &mut SplitMix64) -> Fate {
        let (d, dup, re, co, jitter) =
            (rng.unit(), rng.unit(), rng.unit(), rng.unit(), rng.unit());
        let reordered = re < self.reorder_p;
        let extra_us = if reordered {
            self.reorder_extra_us * (0.25 + jitter)
        } else {
            0.0
        };
        Fate {
            drop: d < self.drop_p,
            duplicate: dup < self.dup_p,
            corrupt: co < self.corrupt_p,
            extra_us,
            // The duplicate trails the primary by a fixed µs so it is a
            // genuine duplicate-in-flight, not a simultaneous twin.
            dup_extra_us: extra_us + 1.0,
        }
    }
}

/// The fate assigned to one transmitted packet.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Fate {
    /// The packet is lost (nothing is delivered).
    pub drop: bool,
    /// A second copy is delivered after the first.
    pub duplicate: bool,
    /// The delivered payload is flagged corrupted.
    pub corrupt: bool,
    /// Extra transit delay for the primary copy, µs (reordering).
    pub extra_us: f64,
    /// Extra transit delay for the duplicate copy, µs.
    pub dup_extra_us: f64,
}

impl Fate {
    /// True if this fate manifests in the reordered state (nonzero
    /// primary delay).
    #[must_use]
    pub fn reordered(&self) -> bool {
        self.extra_us > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let (mut a, mut b) = (SplitMix64::new(99), SplitMix64::new(99));
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn judge_always_draws_five_variates() {
        // Two plans with different rates judged over the same stream
        // leave the RNG at the same position.
        let hot = PacketFates {
            drop_p: 0.9,
            dup_p: 0.9,
            reorder_p: 0.9,
            corrupt_p: 0.9,
            reorder_extra_us: 5.0,
        };
        let cold = PacketFates::NONE;
        let (mut r1, mut r2) = (SplitMix64::new(3), SplitMix64::new(3));
        for _ in 0..50 {
            let _ = hot.judge(&mut r1);
            let _ = cold.judge(&mut r2);
        }
        assert_eq!(r1.next_u64(), r2.next_u64(), "stream positions diverged");
    }

    #[test]
    fn benign_fates_are_inert() {
        let mut rng = SplitMix64::new(0);
        for _ in 0..100 {
            let f = PacketFates::NONE.judge(&mut rng);
            assert!(!f.drop && !f.duplicate && !f.corrupt && !f.reordered());
        }
        assert!(PacketFates::NONE.is_benign());
    }

    #[test]
    fn rates_roughly_respected() {
        let fates = PacketFates {
            drop_p: 0.25,
            ..PacketFates::NONE
        };
        let mut rng = SplitMix64::new(1);
        let mut dropped = 0u32;
        for _ in 0..4000 {
            if fates.judge(&mut rng).drop {
                dropped += 1;
            }
        }
        let rate = f64::from(dropped) / 4000.0;
        assert!((0.20..0.30).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn window_overlap_is_half_open() {
        assert!(windows_overlap(0.0, 10.0, 5.0, 15.0));
        assert!(!windows_overlap(0.0, 10.0, 10.0, 20.0), "touching is fine");
        assert!(windows_overlap(0.0, 10.0, 0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn probability_validated() {
        let _ = check_probability(1.5, "drop");
    }
}
