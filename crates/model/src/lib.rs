//! # mproxy-model — the analytic performance model of HPCA'97 message proxies
//!
//! This crate is the paper's pencil-and-paper machinery, independent of any
//! simulator:
//!
//! * [`MachineParams`] — the Table 1 primitives (cache miss `C`, uncached
//!   access `U`, `vm_att` `V`, polling delay `P`, speed `S`, network `L`)
//!   with the measured IBM G30 values.
//! * [`Cost`] — symbolic linear combinations of the primitives.
//! * [`get_trace`] / [`put_trace`] — the Table 2 critical-path traces; their
//!   sums *are* the §4.1 equations [`get_latency`] and
//!   [`put_oneway_latency`] (`GET = 10C + 6U + 3V + 3.6/S + 3P + 2L`,
//!   `PUT = 7C + 4U + 2V + 2.2/S + 2P + L`).
//! * [`DesignPoint`] — the six Table 3 configurations (HW0, HW1, MP0, MP1,
//!   MP2, SW1) with analytic Table 4 predictions and the paper's measured
//!   values as calibration targets.
//! * [`contention`] — the §5.4 queueing analysis (50% stability rule,
//!   processors-per-proxy, the `P/(P−1)` compute-or-communicate rule).
//!
//! # Examples
//!
//! Predict message-proxy GET latency on a hypothetical 4×-speed SMP with
//! 0.8 µs cache misses:
//!
//! ```
//! use mproxy_model::{get_latency, MachineParams};
//!
//! let machine = MachineParams::G30.with_speed(4.0).with_cache_miss(0.8);
//! let us = get_latency().eval_uniform(&machine);
//! assert!(us < 25.0 && us > 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contention;
mod cost;
pub mod fate;
pub mod logp;
mod design;
mod latency;
mod params;
mod trace;

pub use cost::Cost;
pub use design::{
    design_point_by_name, paper_table4, Arch, DesignPoint, Table4Row, ALL_DESIGN_POINTS, HW0, HW1,
    MP0, MP1, MP2, PAPER_TABLE4, SW1,
};
pub use latency::{
    ack_cost, get_latency, protection_cost_get, protection_cost_put, put_oneway_latency,
    put_roundtrip_latency, rma_overhead, syscall_protection_cost_us,
};
pub use params::MachineParams;
pub use trace::{format_trace, get_trace, put_trace, Agent, TraceStep};
