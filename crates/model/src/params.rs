//! Machine primitives — Table 1 of the paper.
//!
//! The paper distils message-proxy communication into six primitive costs
//! measured on an IBM Model G30 SMP (four 75 MHz PowerPC 601s, SP switch
//! adapter on the Micro Channel):
//!
//! | symbol | meaning                                   | G30 value |
//! |--------|-------------------------------------------|-----------|
//! | `C`    | time to service a cache miss              | 1.0 µs    |
//! | `U`    | uncached (adapter FIFO) access            | 0.5 µs    |
//! | `V`    | `vm_att`/`vm_det` cross-memory attach     | 0.65 µs   |
//! | `P`    | polling delay (scan other queues first)   | 3.0 µs    |
//! | `S`    | processor speed, multiple of 75 MHz       | 1         |
//! | `L`    | network transit latency                   | ~1–2 µs   |
//!
//! `U` is not printed legibly in the paper; it is recovered from the
//! measured one-way latencies (PUT = 18.5 + L µs, GET = 27.5 + L µs)
//! against the §4.1 equations — both solve to `U = 0.5 µs`.


/// Primitive machine costs (Table 1), in microseconds unless noted.
///
/// # Examples
///
/// ```
/// use mproxy_model::MachineParams;
///
/// let g30 = MachineParams::G30;
/// assert_eq!(g30.cache_miss_us, 1.0);
/// assert_eq!(g30.polling_delay_us(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineParams {
    /// `C`: service time of a cache miss between two agents in the SMP.
    pub cache_miss_us: f64,
    /// `U`: latency of an uncached access to the adapter FIFOs.
    pub uncached_us: f64,
    /// `V`: cost of a `vm_att`/`vm_det` cross-memory attach.
    pub vm_att_us: f64,
    /// `S`: processor speed as a multiple of the 75 MHz PowerPC 601.
    pub speed: f64,
    /// `L`: one-way network transit latency.
    pub net_latency_us: f64,
    /// Instruction component of the polling scan, at `S = 1` (the cache-miss
    /// component is derived; see [`MachineParams::polling_delay_us`]).
    pub poll_instr_us: f64,
    /// Cache-miss probes per polling scan (each costs one `C`).
    pub poll_miss_factor: f64,
}

impl MachineParams {
    /// The measured IBM Model G30 configuration of Section 4.
    pub const G30: MachineParams = MachineParams {
        cache_miss_us: 1.0,
        uncached_us: 0.5,
        vm_att_us: 0.65,
        speed: 1.0,
        net_latency_us: 1.0,
        poll_instr_us: 1.5,
        poll_miss_factor: 1.5,
    };

    /// `P`: the polling delay — time the proxy spends scanning other queues
    /// before reaching a newly ready one.
    ///
    /// Decomposed as `P = poll_instr/S + poll_miss_factor · C`: scan
    /// instructions scale with processor speed, and each probe of a
    /// possibly-dirty queue head costs a coherence miss. This reproduces
    /// the measured `P = 3.0 µs` on the G30 and lets the cache-update
    /// design point (MP2) shrink `P` along with `C`, as §4.1's discussion
    /// of polling acceleration anticipates.
    #[must_use]
    pub fn polling_delay_us(&self) -> f64 {
        self.poll_instr_us / self.speed + self.poll_miss_factor * self.cache_miss_us
    }

    /// Returns a copy with a different cache-miss latency (the cache-update
    /// experiment of design point MP2).
    #[must_use]
    pub fn with_cache_miss(mut self, c_us: f64) -> Self {
        self.cache_miss_us = c_us;
        self
    }

    /// Returns a copy with a different processor speed multiple.
    #[must_use]
    pub fn with_speed(mut self, s: f64) -> Self {
        self.speed = s;
        self
    }

    /// Validates that every parameter is positive and finite.
    ///
    /// # Errors
    ///
    /// Returns a description of the first offending field.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("cache_miss_us", self.cache_miss_us),
            ("uncached_us", self.uncached_us),
            ("vm_att_us", self.vm_att_us),
            ("speed", self.speed),
            ("net_latency_us", self.net_latency_us),
            ("poll_instr_us", self.poll_instr_us),
            ("poll_miss_factor", self.poll_miss_factor),
        ];
        for (name, v) in fields {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{name} must be positive and finite, got {v}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g30_polling_delay_matches_table1() {
        // Table 1: polling delay = 3.0 µs on the G30.
        assert_eq!(MachineParams::G30.polling_delay_us(), 3.0);
    }

    #[test]
    fn g30_validates() {
        MachineParams::G30.validate().unwrap();
    }

    #[test]
    fn validation_rejects_nonpositive() {
        let mut p = MachineParams::G30;
        p.speed = 0.0;
        assert!(p.validate().is_err());
        p.speed = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn with_cache_miss_shrinks_polling_delay() {
        let updated = MachineParams::G30.with_cache_miss(0.25);
        // P = 1.5/1 + 1.5·0.25 = 1.875 µs — cache update accelerates polling.
        assert_eq!(updated.polling_delay_us(), 1.875);
    }

    #[test]
    fn with_speed_scales_instruction_component() {
        let fast = MachineParams::G30.with_speed(2.0);
        assert_eq!(fast.polling_delay_us(), 0.75 + 1.5);
    }
}
