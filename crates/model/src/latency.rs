//! The §4.1 latency equations and protection costs for message proxies.
//!
//! The paper models a one-word GET as `(10C + 6U + 3V + 3.6/S + 3P + 2L)` µs
//! and a one-word PUT as `(7C + 4U + 2V + 2.2/S + 2P + L)` µs. Here the
//! equations are derived — by construction — as the sums of the Table 2
//! critical-path traces in [`crate::trace`], so the closed forms and the
//! step-by-step trace can never drift apart.

use crate::cost::Cost;
use crate::trace::{get_trace, put_trace};

/// The one-word GET latency: `10C + 6U + 3V + 3.6/S + 3P + 2L`.
///
/// # Examples
///
/// ```
/// use mproxy_model::{get_latency, MachineParams};
///
/// let us = get_latency().eval_uniform(&MachineParams::G30);
/// assert!((us - 29.55).abs() < 1e-9); // 27.5 µs + 2·(1 µs network)
/// ```
#[must_use]
pub fn get_latency() -> Cost {
    get_trace().iter().map(|s| s.cost).sum()
}

/// The one-word, one-way PUT latency: `7C + 4U + 2V + 2.2/S + 2P + L`.
///
/// # Examples
///
/// ```
/// use mproxy_model::{put_oneway_latency, MachineParams};
///
/// let us = put_oneway_latency().eval_uniform(&MachineParams::G30);
/// assert_eq!(us, 19.5); // 18.5 µs + 1 µs network — the paper's "18.5 + L"
/// ```
#[must_use]
pub fn put_oneway_latency() -> Cost {
    put_trace().iter().map(|s| s.cost).sum()
}

/// The acknowledgement leg appended to a PUT when the caller requests a
/// local completion flag: the remote proxy builds and launches an ack
/// packet, it transits the network, and the local proxy dispatches it and
/// sets the local sync register.
#[must_use]
pub fn ack_cost() -> Cost {
    // Remote: build header + launch.
    Cost::U + Cost::instr(0.6) + Cost::U
        // Wire.
        + Cost::L
        // Local proxy: polling delay, read header, dispatch, set lsync.
        + Cost::P + Cost::C_OTHER + Cost::instr(0.4) + Cost::C_SHARED
}

/// Latency from submitting a PUT until the *local* synchronisation flag is
/// observed set (the quantity reported in Table 4): one-way PUT, then the
/// ack leg, then the user's read of the flag.
#[must_use]
pub fn put_roundtrip_latency() -> Cost {
    put_oneway_latency() + ack_cost() + Cost::C_SHARED
}

/// Compute-processor overhead of a PUT with completion detection
/// ("PUT+sync ovh." in Table 4): two misses to enqueue the command, one to
/// read the sync flag, plus the library-call instructions. All of it is
/// user↔proxy shared memory, which is why cache update nearly eliminates it.
#[must_use]
pub fn rma_overhead() -> Cost {
    Cost {
        c_shared: 3.0,
        ..Cost::ZERO
    } + Cost::instr(0.5)
}

/// The protection cost a message proxy imposes on a GET: `3C + 3V + 3P`
/// (≈ 14 µs on the G30). These are the components that exist *only* because
/// communication is mediated by a protected agent.
#[must_use]
pub fn protection_cost_get() -> Cost {
    Cost {
        c_shared: 3.0,
        ..Cost::ZERO
    } + Cost::V * 3.0
        + Cost::P * 3.0
}

/// The protection cost for a PUT: `3C + 2V + 2P` (≈ 10.3 µs on the G30).
#[must_use]
pub fn protection_cost_put() -> Cost {
    Cost {
        c_shared: 3.0,
        ..Cost::ZERO
    } + Cost::V * 2.0
        + Cost::P * 2.0
}

/// Protection cost of streamlined system-call communication, per the
/// paper's citation of Thekkath et al.: about 23 µs for GET and 19 µs for
/// PUT — higher than the proxy's 14 / 10.3 µs.
#[must_use]
pub fn syscall_protection_cost_us(is_get: bool) -> f64 {
    if is_get {
        23.0
    } else {
        19.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineParams;

    const G30: MachineParams = MachineParams::G30;

    #[test]
    fn protection_costs_match_paper() {
        // §4.1: "3C + 3V + 3P ≈ 14 µs for a GET ... 3C + 2V + 2P ≈ 10.3 µs
        // for a PUT".
        let get = protection_cost_get().eval_uniform(&G30);
        assert!((get - 13.95).abs() < 1e-9, "get protection = {get}");
        let put = protection_cost_put().eval_uniform(&G30);
        assert!((put - 10.3).abs() < 1e-9, "put protection = {put}");
    }

    #[test]
    fn proxy_protection_beats_syscall_protection() {
        assert!(protection_cost_get().eval_uniform(&G30) < syscall_protection_cost_us(true));
        assert!(protection_cost_put().eval_uniform(&G30) < syscall_protection_cost_us(false));
    }

    #[test]
    fn roundtrip_put_exceeds_oneway() {
        let one = put_oneway_latency().eval_uniform(&G30);
        let rt = put_roundtrip_latency().eval_uniform(&G30);
        assert!(rt > one + 2.0, "ack leg must add a transit plus handling");
    }

    #[test]
    fn get_dominates_oneway_put() {
        assert!(get_latency().eval_uniform(&G30) > put_oneway_latency().eval_uniform(&G30));
    }

    #[test]
    fn overhead_is_three_shared_misses_plus_library_call() {
        let o = rma_overhead();
        assert_eq!(o.c_shared, 3.0);
        assert_eq!(o.eval_uniform(&G30), 3.5);
        // Under cache update the overhead nearly vanishes (MP2 column).
        assert_eq!(o.eval(&G30, 0.25), 1.25);
    }

    #[test]
    fn faster_processor_reduces_instruction_and_polling_terms_only() {
        let fast = G30.with_speed(2.0);
        let slow_get = get_latency().eval_uniform(&G30);
        let fast_get = get_latency().eval_uniform(&fast);
        // Gains: 3.6/2 from instructions + 3·(1.5/2) from polling scan.
        assert!((slow_get - fast_get - (1.8 + 2.25)).abs() < 1e-9);
    }

    #[test]
    fn cache_update_improves_get_by_about_forty_percent() {
        // Table 4 text: "A cache-update primitive improves the message
        // proxy latency by about 40%" (MP1 → MP2 at next-gen speed).
        let fast = G30.with_speed(2.0);
        let mp1 = get_latency().eval(&fast, 1.0);
        let mp2 = get_latency().eval(&fast, 0.25);
        let gain = (mp1 - mp2) / mp1;
        assert!(
            (0.30..=0.50).contains(&gain),
            "expected ~40% improvement, got {:.1}% ({mp1:.2} -> {mp2:.2})",
            gain * 100.0
        );
    }
}
