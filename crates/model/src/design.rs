//! The six design points of the comparative evaluation — Table 3.
//!
//! | point | architecture      | technology  | distinguishing features |
//! |-------|-------------------|-------------|-------------------------|
//! | HW0   | custom hardware   | 1997        | uniprocessor nodes (SHRIMP-like), C = 0.5 µs, DMA 25 MB/s |
//! | HW1   | custom hardware   | next-gen    | SMP nodes, C = 1.0 µs, DMA 150 MB/s |
//! | MP0   | message proxy     | 1997        | the measured G30 system |
//! | MP1   | message proxy     | next-gen    | 2× proxy processor, DMA 150 MB/s |
//! | MP2   | message proxy     | next-gen    | MP1 + cache-update primitive (C' = 0.25 µs) |
//! | SW1   | system calls      | next-gen    | 6.5 µs syscalls and interrupts (aggressive) |
//!
//! Several Table 3 cells are illegible in the archival scan; the values here
//! are fixed by the paper's *legible* Table 4 results (see `DESIGN.md`):
//! e.g. DMA bandwidths of 25 / 150 MB/s and 10 µs pin + 10 µs unpin per
//! 4 KiB page reproduce the measured peak bandwidths 22.3 and 86.7 MB/s
//! exactly.


use crate::cost::Cost;
use crate::latency;
use crate::params::MachineParams;

/// The three architectures for protected communication (Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Protection implemented in the network adapter (SHRIMP, Memory
    /// Channel): virtual-memory-mapped communication, pre-pinned buffers.
    CustomHardware,
    /// A trusted kernel process on a dedicated SMP processor mediates all
    /// communication through per-user shared-memory command queues.
    MessageProxy,
    /// The OS user/kernel boundary: system calls out, interrupts in.
    SystemCall,
}

impl Arch {
    /// Short display name.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Arch::CustomHardware => "custom hardware",
            Arch::MessageProxy => "message proxy",
            Arch::SystemCall => "system call",
        }
    }
}

/// A complete parameterisation of one column of Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Name used in the paper ("HW0", ..., "SW1").
    pub name: &'static str,
    /// Which protected-communication architecture this point uses.
    pub arch: Arch,
    /// Primitive machine costs (C, U, V, S, L and the polling model).
    pub machine: MachineParams,
    /// Cache-miss latency between compute processors and the proxy
    /// (equals `machine.cache_miss_us` except under cache update — MP2).
    pub shared_miss_us: f64,
    /// Per-operation overhead of the hardware adapter's protocol logic
    /// (custom-hardware points only).
    pub adapter_ovh_us: f64,
    /// Cost of the user's store that submits a command to a hardware
    /// adapter (custom-hardware points only).
    pub hw_submit_us: f64,
    /// System-call overhead (system-call points only).
    pub syscall_us: f64,
    /// Interrupt overhead (system-call points only).
    pub interrupt_us: f64,
    /// In-kernel protocol execution per kernel crossing (system-call only).
    pub kernel_proto_us: f64,
    /// Peak DMA engine bandwidth, MB/s.
    pub dma_bw_mbs: f64,
    /// Network link bandwidth, MB/s.
    pub net_bw_mbs: f64,
    /// Cost to dynamically pin one page before DMA (zero when pre-pinned).
    pub pin_us: f64,
    /// Cost to unpin one page after DMA (zero when pre-pinned).
    pub unpin_us: f64,
    /// Page size for pinning granularity.
    pub page_bytes: u32,
    /// Transfers at or below this size use programmed I/O; larger ones use
    /// pinned DMA (Section 2: "we use PIO to transfer small blocks and
    /// pinned DMA to transfer large blocks").
    pub pio_threshold_bytes: u32,
}

/// HW0: today's custom hardware on uniprocessor nodes (SHRIMP-like).
pub const HW0: DesignPoint = DesignPoint {
    name: "HW0",
    arch: Arch::CustomHardware,
    machine: MachineParams {
        cache_miss_us: 0.5,
        uncached_us: 0.5,
        vm_att_us: 0.65,
        speed: 1.0,
        net_latency_us: 1.0,
        poll_instr_us: 1.5,
        poll_miss_factor: 1.5,
    },
    shared_miss_us: 0.5,
    adapter_ovh_us: 1.65,
    hw_submit_us: 0.5,
    syscall_us: 0.0,
    interrupt_us: 0.0,
    kernel_proto_us: 0.0,
    dma_bw_mbs: 25.0,
    net_bw_mbs: 175.0,
    pin_us: 0.0,
    unpin_us: 0.0,
    page_bytes: 4096,
    pio_threshold_bytes: 512,
};

/// HW1: next-generation custom hardware on SMP nodes.
pub const HW1: DesignPoint = DesignPoint {
    name: "HW1",
    arch: Arch::CustomHardware,
    machine: MachineParams {
        cache_miss_us: 1.0,
        uncached_us: 0.5,
        vm_att_us: 0.65,
        speed: 2.0,
        net_latency_us: 1.0,
        poll_instr_us: 1.5,
        poll_miss_factor: 1.5,
    },
    shared_miss_us: 1.0,
    adapter_ovh_us: 1.0,
    hw_submit_us: 0.5,
    syscall_us: 0.0,
    interrupt_us: 0.0,
    kernel_proto_us: 0.0,
    dma_bw_mbs: 150.0,
    net_bw_mbs: 250.0,
    pin_us: 0.0,
    unpin_us: 0.0,
    page_bytes: 4096,
    pio_threshold_bytes: 512,
};

/// MP0: the measured IBM G30 message-proxy system of Section 4.
pub const MP0: DesignPoint = DesignPoint {
    name: "MP0",
    arch: Arch::MessageProxy,
    machine: MachineParams::G30,
    shared_miss_us: 1.0,
    adapter_ovh_us: 0.0,
    hw_submit_us: 0.0,
    syscall_us: 0.0,
    interrupt_us: 0.0,
    kernel_proto_us: 0.0,
    dma_bw_mbs: 25.0,
    net_bw_mbs: 175.0,
    pin_us: 10.0,
    unpin_us: 10.0,
    page_bytes: 4096,
    pio_threshold_bytes: 512,
};

/// MP1: next-generation message proxy (2× processor speed, 150 MB/s DMA).
pub const MP1: DesignPoint = DesignPoint {
    name: "MP1",
    arch: Arch::MessageProxy,
    machine: MachineParams {
        speed: 2.0,
        ..MachineParams::G30
    },
    shared_miss_us: 1.0,
    adapter_ovh_us: 0.0,
    hw_submit_us: 0.0,
    syscall_us: 0.0,
    interrupt_us: 0.0,
    kernel_proto_us: 0.0,
    dma_bw_mbs: 150.0,
    net_bw_mbs: 250.0,
    pin_us: 10.0,
    unpin_us: 10.0,
    page_bytes: 4096,
    pio_threshold_bytes: 512,
};

/// MP2: MP1 plus the cache-update primitive — 0.25 µs proxy↔compute misses.
pub const MP2: DesignPoint = DesignPoint {
    name: "MP2",
    arch: Arch::MessageProxy,
    machine: MachineParams {
        speed: 2.0,
        ..MachineParams::G30
    },
    shared_miss_us: 0.25,
    adapter_ovh_us: 0.0,
    hw_submit_us: 0.0,
    syscall_us: 0.0,
    interrupt_us: 0.0,
    kernel_proto_us: 0.0,
    dma_bw_mbs: 150.0,
    net_bw_mbs: 250.0,
    pin_us: 10.0,
    unpin_us: 10.0,
    page_bytes: 4096,
    pio_threshold_bytes: 512,
};

/// SW1: next-generation system-call communication with very aggressive
/// 6.5 µs syscall and interrupt overheads.
pub const SW1: DesignPoint = DesignPoint {
    name: "SW1",
    arch: Arch::SystemCall,
    machine: MachineParams {
        speed: 2.0,
        ..MachineParams::G30
    },
    shared_miss_us: 1.0,
    adapter_ovh_us: 0.0,
    hw_submit_us: 0.0,
    syscall_us: 6.5,
    interrupt_us: 6.5,
    kernel_proto_us: 2.5,
    dma_bw_mbs: 150.0,
    net_bw_mbs: 250.0,
    pin_us: 10.0,
    unpin_us: 10.0,
    page_bytes: 4096,
    pio_threshold_bytes: 512,
};

/// All six design points in the paper's column order.
pub const ALL_DESIGN_POINTS: [DesignPoint; 6] = [HW0, HW1, MP0, MP1, MP2, SW1];

/// Looks a design point up by its paper name (case-insensitive).
#[must_use]
pub fn design_point_by_name(name: &str) -> Option<DesignPoint> {
    ALL_DESIGN_POINTS
        .iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
        .copied()
}

impl DesignPoint {
    /// True if this point models the MP2 cache-update primitive.
    #[must_use]
    pub fn has_cache_update(&self) -> bool {
        self.shared_miss_us < self.machine.cache_miss_us
    }

    /// The effective polling delay `P` for this point (shared-memory scan
    /// probes benefit from cache update).
    #[must_use]
    pub fn polling_us(&self) -> f64 {
        self.machine.poll_instr_us / self.machine.speed
            + self.machine.poll_miss_factor * self.shared_miss_us
    }

    fn eval(&self, cost: Cost) -> f64 {
        cost.eval(&self.machine, self.shared_miss_us)
    }

    /// Analytic prediction of the one-word GET latency (Table 4 row 2).
    #[must_use]
    pub fn predicted_get_us(&self) -> f64 {
        let m = &self.machine;
        let c = m.cache_miss_us;
        let l = m.net_latency_us;
        match self.arch {
            Arch::MessageProxy => self.eval(latency::get_latency()),
            Arch::CustomHardware => {
                // Submit store, three adapter passes, two transits, and four
                // coherent bus interactions (remote fetch, local deliver,
                // set lsync, read lsync).
                self.hw_submit_us + 3.0 * self.adapter_ovh_us + 2.0 * l + 4.0 * c
            }
            Arch::SystemCall => {
                // Syscall out, interrupt at the remote, interrupt for the
                // reply, kernel protocol at each crossing, five misses.
                3.0 * (self.syscall_us + self.kernel_proto_us) + 2.0 * l + 5.0 * c
            }
        }
    }

    /// Analytic prediction of the PUT latency until the local sync flag is
    /// observed set (Table 4 row 1).
    #[must_use]
    pub fn predicted_put_rt_us(&self) -> f64 {
        let c = self.machine.cache_miss_us;
        match self.arch {
            Arch::MessageProxy => self.eval(latency::put_roundtrip_latency()),
            Arch::CustomHardware => self.predicted_get_us() + c,
            Arch::SystemCall => {
                3.0 * (self.syscall_us + self.kernel_proto_us)
                    + 2.0 * self.machine.net_latency_us
                    + 4.0 * c
            }
        }
    }

    /// Analytic prediction of the compute-processor overhead of a PUT with
    /// completion detection (Table 4 row 3).
    #[must_use]
    pub fn predicted_overhead_us(&self) -> f64 {
        match self.arch {
            Arch::MessageProxy => self.eval(latency::rma_overhead()),
            Arch::CustomHardware => self.hw_submit_us + self.machine.cache_miss_us,
            Arch::SystemCall => 2.0 * self.syscall_us + self.kernel_proto_us,
        }
    }

    /// Analytic prediction of peak PUT bandwidth in MB/s (Table 4 row 5):
    /// custom hardware streams from pre-pinned buffers at DMA speed;
    /// software approaches pay pin + unpin per page.
    #[must_use]
    pub fn predicted_peak_bw_mbs(&self) -> f64 {
        let wire = self.dma_bw_mbs.min(self.net_bw_mbs);
        if self.pin_us == 0.0 && self.unpin_us == 0.0 {
            return wire;
        }
        let page = f64::from(self.page_bytes);
        let per_page_us = page / wire + self.pin_us + self.unpin_us;
        page / per_page_us
    }
}

/// The paper's measured Table 4 values, used as calibration targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Row {
    /// PUT latency to local-sync completion, µs.
    pub put_rt_us: f64,
    /// GET latency, µs.
    pub get_us: f64,
    /// PUT + sync compute-processor overhead, µs.
    pub overhead_us: f64,
    /// Active-message request/reply round trip, µs.
    pub am_rt_us: f64,
    /// Peak PUT bandwidth, MB/s.
    pub peak_bw_mbs: f64,
}

/// Table 4 of the paper, in design-point order (HW0, HW1, MP0, MP1, MP2,
/// SW1).
pub const PAPER_TABLE4: [(&str, Table4Row); 6] = [
    (
        "HW0",
        Table4Row {
            put_rt_us: 10.0,
            get_us: 9.5,
            overhead_us: 1.0,
            am_rt_us: 28.2,
            peak_bw_mbs: 25.0,
        },
    ),
    (
        "HW1",
        Table4Row {
            put_rt_us: 10.6,
            get_us: 9.6,
            overhead_us: 1.5,
            am_rt_us: 30.2,
            peak_bw_mbs: 150.0,
        },
    ),
    (
        "MP0",
        Table4Row {
            put_rt_us: 30.0,
            get_us: 28.0,
            overhead_us: 3.5,
            am_rt_us: 63.5,
            peak_bw_mbs: 22.3,
        },
    ),
    (
        "MP1",
        Table4Row {
            put_rt_us: 26.6,
            get_us: 24.7,
            overhead_us: 3.0,
            am_rt_us: 58.0,
            peak_bw_mbs: 86.7,
        },
    ),
    (
        "MP2",
        Table4Row {
            put_rt_us: 16.9,
            get_us: 16.4,
            overhead_us: 0.75,
            am_rt_us: 41.1,
            peak_bw_mbs: 86.7,
        },
    ),
    (
        "SW1",
        Table4Row {
            put_rt_us: 36.1,
            get_us: 34.1,
            overhead_us: 15.0,
            am_rt_us: 107.8,
            peak_bw_mbs: 86.7,
        },
    ),
];

/// Paper target for a design point, if it appears in Table 4.
#[must_use]
pub fn paper_table4(name: &str) -> Option<Table4Row> {
    PAPER_TABLE4
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, row)| *row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(a: f64, b: f64) -> f64 {
        (a - b).abs() / b
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert_eq!(design_point_by_name("mp2").unwrap().name, "MP2");
        assert!(design_point_by_name("MP9").is_none());
    }

    #[test]
    fn all_points_validate() {
        for d in ALL_DESIGN_POINTS {
            d.machine.validate().unwrap();
            assert!(d.shared_miss_us > 0.0);
            assert!(d.dma_bw_mbs > 0.0 && d.net_bw_mbs > 0.0);
        }
    }

    #[test]
    fn only_mp2_has_cache_update() {
        for d in ALL_DESIGN_POINTS {
            assert_eq!(d.has_cache_update(), d.name == "MP2", "{}", d.name);
        }
    }

    #[test]
    fn predicted_latencies_within_ten_percent_of_table4() {
        for d in ALL_DESIGN_POINTS {
            let t = paper_table4(d.name).unwrap();
            assert!(
                rel_err(d.predicted_get_us(), t.get_us) < 0.10,
                "{} GET: predicted {:.2} vs paper {:.2}",
                d.name,
                d.predicted_get_us(),
                t.get_us
            );
            assert!(
                rel_err(d.predicted_put_rt_us(), t.put_rt_us) < 0.10,
                "{} PUT*: predicted {:.2} vs paper {:.2}",
                d.name,
                d.predicted_put_rt_us(),
                t.put_rt_us
            );
        }
    }

    #[test]
    fn predicted_overheads_close_to_table4() {
        for d in ALL_DESIGN_POINTS {
            let t = paper_table4(d.name).unwrap();
            let diff = (d.predicted_overhead_us() - t.overhead_us).abs();
            assert!(
                diff < 0.6,
                "{} overhead: predicted {:.2} vs paper {:.2}",
                d.name,
                d.predicted_overhead_us(),
                t.overhead_us
            );
        }
    }

    #[test]
    fn peak_bandwidth_identities_are_exact() {
        // The pin/DMA parameters were *derived* from these Table 4 cells;
        // check the round trip.
        assert!(rel_err(MP0.predicted_peak_bw_mbs(), 22.3) < 0.005);
        assert!(rel_err(MP1.predicted_peak_bw_mbs(), 86.7) < 0.005);
        assert!(rel_err(MP2.predicted_peak_bw_mbs(), 86.7) < 0.005);
        assert!(rel_err(SW1.predicted_peak_bw_mbs(), 86.7) < 0.005);
        assert_eq!(HW0.predicted_peak_bw_mbs(), 25.0);
        assert_eq!(HW1.predicted_peak_bw_mbs(), 150.0);
    }

    #[test]
    fn proxy_latency_about_2_5x_custom_hardware() {
        // §5.2: "Message proxy latency is about 2.5 times longer than
        // custom hardware" (MP0/MP1 vs HW0/HW1).
        let ratio = MP1.predicted_get_us() / HW1.predicted_get_us();
        assert!((2.0..=3.2).contains(&ratio), "ratio = {ratio:.2}");
    }

    #[test]
    fn mp2_recovers_most_of_the_overhead_gap() {
        // §5.2: "a cache-update primitive removes most of that overhead".
        let gap_mp1 = MP1.predicted_overhead_us() - HW1.predicted_overhead_us();
        let gap_mp2 = MP2.predicted_overhead_us() - HW1.predicted_overhead_us();
        assert!(gap_mp2 < 0.0, "MP2 overhead should drop below HW1");
        assert!(gap_mp1 > 1.0);
    }

    #[test]
    fn sw1_overhead_is_an_order_worse() {
        assert!(SW1.predicted_overhead_us() > 4.0 * MP1.predicted_overhead_us());
    }

    #[test]
    fn polling_delays_ordered_mp0_mp1_mp2() {
        assert!(MP0.polling_us() > MP1.polling_us());
        assert!(MP1.polling_us() > MP2.polling_us());
        assert_eq!(MP0.polling_us(), 3.0);
    }
}
