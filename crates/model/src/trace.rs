//! The critical-path trace of message-proxy communication — Table 2.
//!
//! The paper instruments a one-word GET on a quiescent pair of G30 SMPs and
//! lists every primitive operation on the critical path, per agent. The
//! printed table is partially illegible in the archival scan, so this module
//! *reconstructs* it under two hard constraints: (i) each step uses only
//! operations named in the paper, and (ii) the per-primitive totals sum
//! exactly to the §4.1 closed-form equations
//! (GET = 10C + 6U + 3V + 3.6/S + 3P + 2L,
//! PUT = 7C + 4U + 2V + 2.2/S + 2P + L), which are fully legible.
//! The test suite enforces (ii).

use crate::cost::Cost;

/// Which agent executes a trace step (column 1 of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Agent {
    /// The user process on a compute processor.
    User,
    /// The message proxy on the originating node.
    LocalProxy,
    /// The interconnect.
    Network,
    /// The message proxy on the remote node.
    RemoteProxy,
}

impl Agent {
    /// Display label matching the paper's table.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Agent::User => "User",
            Agent::LocalProxy => "Message Proxy (local)",
            Agent::Network => "Network",
            Agent::RemoteProxy => "Message Proxy (remote)",
        }
    }
}

/// One row of the critical-path trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceStep {
    /// Executing agent.
    pub agent: Agent,
    /// Operation description.
    pub operation: &'static str,
    /// Symbolic cost of the step.
    pub cost: Cost,
}

impl TraceStep {
    const fn new(agent: Agent, operation: &'static str, cost: Cost) -> Self {
        TraceStep {
            agent,
            operation,
            cost,
        }
    }
}

/// The Table 2 trace of a one-word GET.
///
/// # Examples
///
/// ```
/// use mproxy_model::{get_trace, MachineParams};
///
/// let total: mproxy_model::Cost = get_trace().iter().map(|s| s.cost).sum();
/// // GET = 27.5 µs + 2L on the G30 (paper §4.1).
/// let no_net = total.eval_uniform(&MachineParams::G30)
///     - 2.0 * MachineParams::G30.net_latency_us;
/// assert!((no_net - 27.5).abs() < 0.1);
/// ```
#[must_use]
pub fn get_trace() -> Vec<TraceStep> {
    use Agent::*;
    let c = Cost::C_SHARED;
    let ca = Cost::C_OTHER;
    let u = Cost::U;
    let v = Cost::V;
    let p = Cost::P;
    let l = Cost::L;
    vec![
        TraceStep::new(
            User,
            "enq command, (read miss, write miss)",
            Cost {
                c_shared: 2.0,
                ..Cost::ZERO
            },
        ),
        TraceStep::new(LocalProxy, "polling delay", p),
        TraceStep::new(LocalProxy, "vm_att to FIFO queue", v),
        TraceStep::new(LocalProxy, "dequeue entry, (read miss)", c),
        TraceStep::new(LocalProxy, "decode command, allocate CCB", Cost::instr(0.5)),
        TraceStep::new(LocalProxy, "dispatch to send routine", Cost::instr(0.1)),
        TraceStep::new(
            LocalProxy,
            "set up network packet header",
            u + Cost::instr(0.6),
        ),
        TraceStep::new(LocalProxy, "launch packet", u),
        TraceStep::new(Network, "transit time", l),
        TraceStep::new(RemoteProxy, "polling delay", p),
        TraceStep::new(RemoteProxy, "read input packet header, (read miss)", ca),
        TraceStep::new(
            RemoteProxy,
            "decode packet, dispatch to handler",
            Cost::instr(0.4),
        ),
        TraceStep::new(
            RemoteProxy,
            "compute remote address, check validity",
            Cost::instr(0.1),
        ),
        TraceStep::new(RemoteProxy, "vm_att to remote address space", v),
        TraceStep::new(
            RemoteProxy,
            "address and packet size check",
            Cost::instr(0.3),
        ),
        TraceStep::new(
            RemoteProxy,
            "set up network packet header",
            u + Cost::instr(0.7),
        ),
        TraceStep::new(RemoteProxy, "fill in data, (read miss)", c + u),
        TraceStep::new(RemoteProxy, "set remote sync. register, (write miss)", c),
        TraceStep::new(RemoteProxy, "launch packet", u),
        TraceStep::new(Network, "transit time", l),
        TraceStep::new(LocalProxy, "polling delay", p),
        TraceStep::new(LocalProxy, "read input packet header, (read miss)", ca),
        TraceStep::new(
            LocalProxy,
            "decode packet, dispatch to handler",
            Cost::instr(0.4),
        ),
        TraceStep::new(LocalProxy, "vm_att to local address space", v),
        TraceStep::new(
            LocalProxy,
            "find local addr in CCB, check validity",
            Cost::instr(0.5),
        ),
        TraceStep::new(LocalProxy, "read packet data, (uncached)", u),
        TraceStep::new(LocalProxy, "copy data to destination, (write miss)", c),
        TraceStep::new(LocalProxy, "set local sync. register, (write miss)", c),
        TraceStep::new(User, "read local sync. register, (read miss)", c),
    ]
}

/// The critical-path trace of a one-word, one-way PUT (same methodology as
/// Table 2; the paper notes a PUT "is similar, except it involves a one-way
/// communication instead of a round trip").
#[must_use]
pub fn put_trace() -> Vec<TraceStep> {
    use Agent::*;
    let c = Cost::C_SHARED;
    let ca = Cost::C_OTHER;
    let u = Cost::U;
    let v = Cost::V;
    let p = Cost::P;
    let l = Cost::L;
    vec![
        TraceStep::new(
            User,
            "enq command, (read miss, write miss)",
            Cost {
                c_shared: 2.0,
                ..Cost::ZERO
            },
        ),
        TraceStep::new(LocalProxy, "polling delay", p),
        TraceStep::new(LocalProxy, "vm_att to FIFO queue", v),
        TraceStep::new(LocalProxy, "dequeue entry, (read miss)", c),
        TraceStep::new(LocalProxy, "decode command, allocate CCB", Cost::instr(0.5)),
        TraceStep::new(LocalProxy, "dispatch to send routine", Cost::instr(0.1)),
        TraceStep::new(
            LocalProxy,
            "set up network packet header",
            u + Cost::instr(0.6),
        ),
        TraceStep::new(LocalProxy, "fill in data, (read miss)", c + u),
        TraceStep::new(LocalProxy, "launch packet", u),
        TraceStep::new(Network, "transit time", l),
        TraceStep::new(RemoteProxy, "polling delay", p),
        TraceStep::new(RemoteProxy, "read input packet header, (read miss)", ca),
        TraceStep::new(
            RemoteProxy,
            "decode packet, dispatch to handler",
            Cost::instr(0.4),
        ),
        TraceStep::new(
            RemoteProxy,
            "compute remote address, check validity",
            Cost::instr(0.3),
        ),
        TraceStep::new(RemoteProxy, "vm_att to remote address space", v),
        TraceStep::new(
            RemoteProxy,
            "address and packet size check",
            Cost::instr(0.3),
        ),
        TraceStep::new(RemoteProxy, "read packet data, (uncached)", u),
        TraceStep::new(RemoteProxy, "store data to destination, (write miss)", c),
        TraceStep::new(RemoteProxy, "set remote sync. register, (write miss)", c),
    ]
}

/// Renders a trace in the layout of the paper's Table 2, evaluated on `m`.
#[must_use]
pub fn format_trace(steps: &[TraceStep], m: &crate::MachineParams) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut last_agent: Option<Agent> = None;
    let mut total = Cost::ZERO;
    let _ = writeln!(out, "{:<24} {:<48} {:>9}", "Agent", "Operation", "us");
    let _ = writeln!(out, "{}", "-".repeat(84));
    for s in steps {
        let label = if last_agent == Some(s.agent) {
            ""
        } else {
            s.agent.label()
        };
        last_agent = Some(s.agent);
        let _ = writeln!(
            out,
            "{:<24} {:<48} {:>9.3}",
            label,
            s.operation,
            s.cost.eval_uniform(m)
        );
        total += s.cost;
    }
    let _ = writeln!(out, "{}", "-".repeat(84));
    let _ = writeln!(
        out,
        "{:<24} {:<48} {:>9.3}",
        "Total",
        "",
        total.eval_uniform(m)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineParams;

    fn total(steps: &[TraceStep]) -> Cost {
        steps.iter().map(|s| s.cost).sum()
    }

    #[test]
    fn get_trace_sums_to_section41_equation() {
        // GET = 10C + 6U + 3V + 3.6/S + 3P + 2L.
        let t = total(&get_trace());
        assert_eq!(t.cache_misses(), 10.0);
        assert_eq!(t.u, 6.0);
        assert_eq!(t.v, 3.0);
        assert!((t.instr - 3.6).abs() < 1e-12);
        assert_eq!(t.p, 3.0);
        assert_eq!(t.l, 2.0);
        assert_eq!(t.fixed_us, 0.0);
    }

    #[test]
    fn put_trace_sums_to_section41_equation() {
        // PUT = 7C + 4U + 2V + 2.2/S + 2P + L.
        let t = total(&put_trace());
        assert_eq!(t.cache_misses(), 7.0);
        assert_eq!(t.u, 4.0);
        assert_eq!(t.v, 2.0);
        assert!((t.instr - 2.2).abs() < 1e-12);
        assert_eq!(t.p, 2.0);
        assert_eq!(t.l, 1.0);
    }

    #[test]
    fn measured_g30_latencies_recovered() {
        // Paper: PUT one-way = 18.5 + L µs, GET = 27.5 µs + network.
        let m = MachineParams::G30;
        let put = total(&put_trace()).eval_uniform(&m) - m.net_latency_us;
        assert!((put - 18.5).abs() < 1e-9, "put={put}");
        let get = total(&get_trace()).eval_uniform(&m) - 2.0 * m.net_latency_us;
        assert!((get - 27.5).abs() < 0.1, "get={get}");
    }

    #[test]
    fn user_overhead_is_three_cache_misses() {
        // §4.1: "user overhead amounts to only three cache misses to submit
        // the command" — 2 to enqueue plus 1 to read the sync flag; all are
        // shared-memory misses (accelerated by cache update in MP2).
        let user: Cost = get_trace()
            .iter()
            .filter(|s| s.agent == Agent::User)
            .map(|s| s.cost)
            .sum();
        assert_eq!(user.c_shared, 3.0);
        assert_eq!(user.c_other, 0.0);
        assert_eq!(user.u + user.v + user.p + user.l, 0.0);
    }

    #[test]
    fn trace_spans_three_polling_delays_and_two_transits() {
        let get = total(&get_trace());
        assert_eq!((get.p, get.l), (3.0, 2.0));
        let put = total(&put_trace());
        assert_eq!((put.p, put.l), (2.0, 1.0));
    }

    #[test]
    fn formatting_includes_totals_and_agents() {
        let s = format_trace(&get_trace(), &MachineParams::G30);
        assert!(s.contains("Message Proxy (remote)"));
        assert!(s.contains("Total"));
        assert!(s.contains("29.550"));
    }
}
