//! Symbolic cost expressions over the Table 1 primitives.
//!
//! A [`Cost`] is a linear combination `a·C' + b·C + c·U + d·V + e/S + f·P +
//! g·L + fixed`, evaluated against a [`MachineParams`]. The paper's §4.1
//! latency equations are `Cost` values; so is every row of the Table 2
//! critical-path trace, which lets the test suite check that the trace sums
//! exactly to the closed-form equations.
//!
//! The cache-miss term is split in two: `c_shared` counts misses between a
//! compute processor and the proxy through shared memory (the ones the MP2
//! cache-update primitive accelerates), while `c_other` counts misses
//! against adapter-sourced data. With a uniform miss latency the split is
//! invisible; under cache update only `c_shared` gets the short latency.

use core::ops::{Add, AddAssign, Mul};


use crate::params::MachineParams;

/// A linear combination of primitive costs; see the module docs.
///
/// # Examples
///
/// ```
/// use mproxy_model::{Cost, MachineParams};
///
/// // One polling delay plus one cache miss:
/// let cost = Cost::P + Cost::C_SHARED;
/// assert_eq!(cost.eval_uniform(&MachineParams::G30), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// Cache misses between compute processor and proxy (shared memory).
    pub c_shared: f64,
    /// Cache misses against adapter-sourced data (packet headers).
    pub c_other: f64,
    /// Uncached adapter-FIFO accesses (`U`).
    pub u: f64,
    /// Cross-memory attaches (`V`).
    pub v: f64,
    /// Cached instruction work in µs at `S = 1` (scales as `1/S`).
    pub instr: f64,
    /// Polling delays (`P`).
    pub p: f64,
    /// Network transits (`L`).
    pub l: f64,
    /// Fixed microseconds not covered by any primitive.
    pub fixed_us: f64,
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost::new();

    /// One shared-memory cache miss.
    pub const C_SHARED: Cost = Cost {
        c_shared: 1.0,
        ..Cost::new()
    };
    /// One adapter-data cache miss.
    pub const C_OTHER: Cost = Cost {
        c_other: 1.0,
        ..Cost::new()
    };
    /// One uncached access.
    pub const U: Cost = Cost {
        u: 1.0,
        ..Cost::new()
    };
    /// One cross-memory attach.
    pub const V: Cost = Cost {
        v: 1.0,
        ..Cost::new()
    };
    /// One polling delay.
    pub const P: Cost = Cost {
        p: 1.0,
        ..Cost::new()
    };
    /// One network transit.
    pub const L: Cost = Cost {
        l: 1.0,
        ..Cost::new()
    };

    const fn new() -> Cost {
        Cost {
            c_shared: 0.0,
            c_other: 0.0,
            u: 0.0,
            v: 0.0,
            instr: 0.0,
            p: 0.0,
            l: 0.0,
            fixed_us: 0.0,
        }
    }

    /// Instruction work of `us` microseconds at `S = 1`.
    #[must_use]
    pub const fn instr(us: f64) -> Cost {
        Cost {
            instr: us,
            ..Cost::new()
        }
    }

    /// A fixed cost of `us` microseconds.
    #[must_use]
    pub const fn fixed(us: f64) -> Cost {
        Cost {
            fixed_us: us,
            ..Cost::new()
        }
    }

    /// Total cache misses of either kind.
    #[must_use]
    pub fn cache_misses(&self) -> f64 {
        self.c_shared + self.c_other
    }

    /// Evaluates with a distinct latency for shared-memory misses
    /// (`shared_miss_us`), modelling the MP2 cache-update primitive.
    ///
    /// The polling-delay term also uses `shared_miss_us`: the proxy's scan
    /// probes shared-memory queue heads, so cache update accelerates
    /// polling too (`P = poll_instr/S + poll_miss_factor · C_shared`).
    #[must_use]
    pub fn eval(&self, m: &MachineParams, shared_miss_us: f64) -> f64 {
        let polling_us = m.poll_instr_us / m.speed + m.poll_miss_factor * shared_miss_us;
        self.c_shared * shared_miss_us
            + self.c_other * m.cache_miss_us
            + self.u * m.uncached_us
            + self.v * m.vm_att_us
            + self.instr / m.speed
            + self.p * polling_us
            + self.l * m.net_latency_us
            + self.fixed_us
    }

    /// Evaluates with a uniform cache-miss latency (no cache update),
    /// exactly the paper's `(aC + bU + cV + d/S + eP + fL)` form.
    #[must_use]
    pub fn eval_uniform(&self, m: &MachineParams) -> f64 {
        self.eval(m, m.cache_miss_us)
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, r: Cost) -> Cost {
        Cost {
            c_shared: self.c_shared + r.c_shared,
            c_other: self.c_other + r.c_other,
            u: self.u + r.u,
            v: self.v + r.v,
            instr: self.instr + r.instr,
            p: self.p + r.p,
            l: self.l + r.l,
            fixed_us: self.fixed_us + r.fixed_us,
        }
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, r: Cost) {
        *self = *self + r;
    }
}

impl Mul<f64> for Cost {
    type Output = Cost;
    fn mul(self, k: f64) -> Cost {
        Cost {
            c_shared: self.c_shared * k,
            c_other: self.c_other * k,
            u: self.u * k,
            v: self.v * k,
            instr: self.instr * k,
            p: self.p * k,
            l: self.l * k,
            fixed_us: self.fixed_us * k,
        }
    }
}

impl core::iter::Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_evaluate_to_their_g30_values() {
        let m = &MachineParams::G30;
        assert_eq!(Cost::C_SHARED.eval_uniform(m), 1.0);
        assert_eq!(Cost::U.eval_uniform(m), 0.5);
        assert_eq!(Cost::V.eval_uniform(m), 0.65);
        assert_eq!(Cost::P.eval_uniform(m), 3.0);
        assert_eq!(Cost::L.eval_uniform(m), 1.0);
        assert_eq!(Cost::instr(2.0).eval_uniform(m), 2.0);
        assert_eq!(Cost::fixed(0.3).eval_uniform(m), 0.3);
    }

    #[test]
    fn shared_split_only_matters_under_cache_update() {
        let m = &MachineParams::G30;
        let cost = Cost::C_SHARED * 8.0 + Cost::C_OTHER * 2.0;
        assert_eq!(cost.eval_uniform(m), 10.0);
        assert_eq!(cost.eval(m, 0.25), 8.0 * 0.25 + 2.0);
    }

    #[test]
    fn addition_and_scaling_are_componentwise() {
        let a = Cost::C_SHARED + Cost::U * 2.0 + Cost::instr(0.5);
        let b = a + a;
        assert_eq!(b, a * 2.0);
        let m = &MachineParams::G30;
        assert!((b.eval_uniform(m) - 2.0 * a.eval_uniform(m)).abs() < 1e-12);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Cost = [Cost::P, Cost::P, Cost::L].into_iter().sum();
        assert_eq!(total.p, 2.0);
        assert_eq!(total.l, 1.0);
    }

    #[test]
    fn instruction_work_scales_with_speed() {
        let fast = MachineParams::G30.with_speed(2.0);
        assert_eq!(Cost::instr(3.6).eval_uniform(&fast), 1.8);
    }
}
