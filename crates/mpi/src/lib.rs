//! # mproxy-mpi — two-sided message passing over RMA/RQ
//!
//! Section 3 of the paper argues that remote memory access and remote
//! queues "form an efficient and convenient layer for implementing
//! higher-level communication protocols such as Active Messages and MPI".
//! `mproxy-am` is the first; this crate is the second: a miniature MPI-like
//! layer with tagged, matched, ordered two-sided `send`/`recv`, built the
//! way real MPIs sit on RDMA transports:
//!
//! * **eager protocol** for small messages — the payload rides inside the
//!   request active message and is buffered at the receiver until a
//!   matching `recv` is posted;
//! * **rendezvous protocol** for large messages — the sender publishes a
//!   ready-to-send descriptor, the matching receiver pulls the payload
//!   with a zero-copy `GET` straight from the sender's buffer, then
//!   releases the sender.
//!
//! Matching follows MPI rules: `(source, tag)` with wildcards, FIFO order
//! per (source, tag) pair.
//!
//! # Examples
//!
//! ```
//! use mproxy::{Cluster, ClusterSpec, ProcId};
//! use mproxy_am::Am;
//! use mproxy_des::Simulation;
//! use mproxy_mpi::Mpi;
//!
//! let sim = Simulation::new();
//! let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(mproxy_model::MP1, 2, 1)).unwrap();
//! cluster.spawn_spmd(|p| async move {
//!     let am = Am::new(&p);
//!     let mpi = Mpi::new(&p, &am);
//!     let buf = p.alloc(64);
//!     p.ctx().yield_now().await;
//!     if p.rank() == ProcId(0) {
//!         p.write_u64(buf, 424242);
//!         mpi.send(ProcId(1), 7, buf, 8).await;
//!     } else {
//!         let (src, tag, len) = mpi.recv(None, None, buf, 64).await;
//!         assert_eq!((src, tag, len), (ProcId(0), 7, 8));
//!         assert_eq!(p.read_u64(buf), 424242);
//!     }
//! });
//! assert!(cluster.run(&sim).completed_cleanly());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use bytes::Bytes;
use mproxy::{Addr, Proc, ProcId};
use mproxy_am::{Am, HandlerId};
use mproxy_des::Counter;

/// Messages at or below this payload size use the eager protocol.
pub const EAGER_MAX: u32 = 192;

enum Payload {
    /// Eager: the data arrived with the envelope.
    Eager(Bytes),
    /// Rendezvous: the data still sits in the sender's buffer.
    Rts { addr: Addr, len: u32, seq: u64 },
}

struct Envelope {
    src: ProcId,
    tag: u32,
    payload: Payload,
}

struct MpiState {
    /// Arrived-but-unmatched messages, in arrival order (which preserves
    /// per-(source, tag) FIFO ordering thanks to in-order delivery).
    unexpected: RefCell<VecDeque<Envelope>>,
    /// Completed rendezvous sends, by sequence number.
    released: Counter,
    next_seq: Cell<u64>,
    h_eager: Cell<HandlerId>,
    h_rts: Cell<HandlerId>,
    h_done: Cell<HandlerId>,
    sends: Cell<u64>,
    recvs: Cell<u64>,
}

/// A per-process message-passing endpoint.
///
/// Cheap to clone; clones share the endpoint state.
#[derive(Clone)]
pub struct Mpi {
    p: Proc,
    am: Am,
    st: Rc<MpiState>,
}

fn u32_at(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().expect("u32"))
}
fn u64_at(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("u64"))
}

impl Mpi {
    /// Creates the endpoint and registers its three protocol handlers on
    /// `am` (all SPMD ranks must construct in the same order).
    #[must_use]
    pub fn new(p: &Proc, am: &Am) -> Mpi {
        let st = Rc::new(MpiState {
            unexpected: RefCell::new(VecDeque::new()),
            released: Counter::new(),
            next_seq: Cell::new(0),
            h_eager: Cell::new(HandlerId(0)),
            h_rts: Cell::new(HandlerId(0)),
            h_done: Cell::new(HandlerId(0)),
            sends: Cell::new(0),
            recvs: Cell::new(0),
        });
        // Eager data: args = [tag u32][payload...].
        let s1 = Rc::clone(&st);
        let h_eager = am.register(move |_, msg| {
            let s = Rc::clone(&s1);
            Box::pin(async move {
                let tag = u32_at(&msg.args, 0);
                s.unexpected.borrow_mut().push_back(Envelope {
                    src: msg.src,
                    tag,
                    payload: Payload::Eager(msg.args.slice(4..)),
                });
            })
        });
        // Ready-to-send: args = [tag u32][len u32][addr u64][seq u64].
        let s2 = Rc::clone(&st);
        let h_rts = am.register(move |_, msg| {
            let s = Rc::clone(&s2);
            Box::pin(async move {
                let tag = u32_at(&msg.args, 0);
                let len = u32_at(&msg.args, 4);
                let addr = Addr(u64_at(&msg.args, 8));
                let seq = u64_at(&msg.args, 16);
                s.unexpected.borrow_mut().push_back(Envelope {
                    src: msg.src,
                    tag,
                    payload: Payload::Rts { addr, len, seq },
                });
            })
        });
        // Rendezvous completion: args = [seq u64]; wakes the sender. The
        // sequence check relies on FIFO release order per peer — simple
        // and sufficient because a sender blocks per message.
        let s3 = Rc::clone(&st);
        let h_done = am.register(move |_, msg| {
            let s = Rc::clone(&s3);
            Box::pin(async move {
                let _seq = u64_at(&msg.args, 0);
                s.released.incr();
            })
        });
        st.h_eager.set(h_eager);
        st.h_rts.set(h_rts);
        st.h_done.set(h_done);
        Mpi {
            p: p.clone(),
            am: am.clone(),
            st,
        }
    }

    /// The owning process.
    #[must_use]
    pub fn proc(&self) -> &Proc {
        &self.p
    }

    /// Messages sent / received so far.
    #[must_use]
    pub fn counts(&self) -> (u64, u64) {
        (self.st.sends.get(), self.st.recvs.get())
    }

    /// Blocking tagged send of `nbytes` at `laddr` to `dst`.
    ///
    /// Small messages return once buffered at the receiver (eager); large
    /// ones return when the receiver has pulled the data (rendezvous), so
    /// `laddr` may be reused immediately after the call in both cases.
    pub async fn send(&self, dst: ProcId, tag: u32, laddr: Addr, nbytes: u32) {
        self.st.sends.set(self.st.sends.get() + 1);
        if nbytes <= EAGER_MAX {
            let mut args = Vec::with_capacity(4 + nbytes as usize);
            args.extend_from_slice(&tag.to_le_bytes());
            args.extend_from_slice(&self.p.read_bytes(laddr, nbytes));
            self.am.request(dst, self.st.h_eager.get(), &args).await;
            return;
        }
        let seq = self.st.next_seq.get();
        self.st.next_seq.set(seq + 1);
        let mut args = [0u8; 24];
        args[0..4].copy_from_slice(&tag.to_le_bytes());
        args[4..8].copy_from_slice(&nbytes.to_le_bytes());
        args[8..16].copy_from_slice(&laddr.0.to_le_bytes());
        args[16..24].copy_from_slice(&seq.to_le_bytes());
        self.am.request(dst, self.st.h_rts.get(), &args).await;
        // Keep servicing requests while the receiver pulls our buffer.
        let released = self.st.released.clone();
        let target = seq + 1;
        self.am.poll_while(|| released.get() >= target).await;
    }

    /// Blocking tagged receive into `laddr` (at most `max_bytes`).
    /// `src = None` and `tag = None` are wildcards. Returns the matched
    /// source, tag, and length.
    ///
    /// # Panics
    ///
    /// Panics if the matched message exceeds `max_bytes` (truncation is an
    /// application error in this miniature MPI).
    pub async fn recv(
        &self,
        src: Option<ProcId>,
        tag: Option<u32>,
        laddr: Addr,
        max_bytes: u32,
    ) -> (ProcId, u32, u32) {
        loop {
            let matched = {
                let mut q = self.st.unexpected.borrow_mut();
                let pos = q.iter().position(|e| {
                    src.is_none_or(|s| s == e.src) && tag.is_none_or(|t| t == e.tag)
                });
                pos.and_then(|i| q.remove(i))
            };
            if let Some(env) = matched {
                self.st.recvs.set(self.st.recvs.get() + 1);
                match env.payload {
                    Payload::Eager(data) => {
                        assert!(
                            data.len() as u32 <= max_bytes,
                            "message of {} bytes exceeds recv buffer of {max_bytes}",
                            data.len()
                        );
                        self.p.write_bytes(laddr, &data);
                        return (env.src, env.tag, data.len() as u32);
                    }
                    Payload::Rts { addr, len, seq } => {
                        assert!(
                            len <= max_bytes,
                            "message of {len} bytes exceeds recv buffer of {max_bytes}"
                        );
                        // Zero-copy pull straight from the sender's buffer,
                        // then release the sender.
                        self.am.get_bulk(env.src, laddr, addr, len).await;
                        self.am
                            .request(env.src, self.st.h_done.get(), &seq.to_le_bytes())
                            .await;
                        return (env.src, env.tag, len);
                    }
                }
            }
            self.am.poll().await;
        }
    }

    /// Convenience: blocking send of a byte slice through a scratch
    /// allocation.
    pub async fn send_bytes(&self, dst: ProcId, tag: u32, data: &[u8]) {
        let buf = self.p.alloc(data.len() as u64);
        self.p.write_bytes(buf, data);
        self.send(dst, tag, buf, data.len() as u32).await;
    }
}

impl std::fmt::Debug for Mpi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (s, r) = self.counts();
        f.debug_struct("Mpi")
            .field("proc", &self.p.rank())
            .field("sent", &s)
            .field("received", &r)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mproxy::{Cluster, ClusterSpec};
    use mproxy_des::Simulation;
    use mproxy_model::{ALL_DESIGN_POINTS, MP1};
    use std::future::Future;

    fn run_mpi<F, Fut>(design: mproxy_model::DesignPoint, n: usize, body: F)
    where
        F: Fn(Proc, Mpi) -> Fut,
        Fut: Future<Output = ()> + 'static,
    {
        let sim = Simulation::new();
        let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(design, n, 1)).unwrap();
        cluster.spawn_spmd(move |p| {
            let am = Am::new(&p);
            let mpi = Mpi::new(&p, &am);
            body(p, mpi)
        });
        let report = cluster.run(&sim);
        assert!(report.completed_cleanly(), "mpi test deadlocked");
    }

    #[test]
    fn eager_pingpong_on_every_architecture() {
        for d in ALL_DESIGN_POINTS {
            run_mpi(d, 2, |p, mpi| async move {
                let buf = p.alloc(64);
                p.ctx().yield_now().await;
                if p.rank().0 == 0 {
                    p.write_u64(buf, 5);
                    mpi.send(ProcId(1), 1, buf, 8).await;
                    let (src, tag, len) = mpi.recv(None, None, buf, 64).await;
                    assert_eq!((src, tag, len), (ProcId(1), 2, 8));
                    assert_eq!(p.read_u64(buf), 6);
                } else {
                    let _ = mpi.recv(Some(ProcId(0)), Some(1), buf, 64).await;
                    p.write_u64(buf, p.read_u64(buf) + 1);
                    mpi.send(ProcId(0), 2, buf, 8).await;
                }
            });
        }
    }

    #[test]
    fn rendezvous_moves_large_payloads() {
        run_mpi(MP1, 2, |p, mpi| async move {
            let n = 8192u32;
            let buf = p.alloc(u64::from(n));
            p.ctx().yield_now().await;
            if p.rank().0 == 0 {
                for i in 0..(n / 8) as u64 {
                    p.write_u64(buf.index(i, 8), i * 3 + 1);
                }
                mpi.send(ProcId(1), 9, buf, n).await;
                // Buffer reusable immediately after a rendezvous send.
                p.write_u64(buf, 0);
            } else {
                let (src, tag, len) = mpi.recv(None, None, buf, n).await;
                assert_eq!((src, tag, len), (ProcId(0), 9, n));
                for i in 0..(n / 8) as u64 {
                    assert_eq!(p.read_u64(buf.index(i, 8)), i * 3 + 1);
                }
            }
        });
    }

    #[test]
    fn tag_and_source_matching_with_wildcards() {
        run_mpi(MP1, 3, |p, mpi| async move {
            let buf = p.alloc(64);
            p.ctx().yield_now().await;
            match p.rank().0 {
                1 | 2 => {
                    p.write_u64(buf, 100 + u64::from(p.rank().0));
                    mpi.send(ProcId(0), p.rank().0, buf, 8).await;
                }
                _ => {
                    // Receive tag 2 first even though tag 1 may arrive
                    // earlier; then wildcard for the rest.
                    let (src, tag, _) = mpi.recv(None, Some(2), buf, 64).await;
                    assert_eq!((src, tag), (ProcId(2), 2));
                    assert_eq!(p.read_u64(buf), 102);
                    let (src, tag, _) = mpi.recv(None, None, buf, 64).await;
                    assert_eq!((src, tag), (ProcId(1), 1));
                    assert_eq!(p.read_u64(buf), 101);
                }
            }
        });
    }

    #[test]
    fn per_source_ordering_is_fifo() {
        run_mpi(MP1, 2, |p, mpi| async move {
            let buf = p.alloc(64);
            p.ctx().yield_now().await;
            if p.rank().0 == 0 {
                for i in 0..10u64 {
                    p.write_u64(buf, i);
                    mpi.send(ProcId(1), 5, buf, 8).await;
                }
            } else {
                for i in 0..10u64 {
                    let _ = mpi.recv(Some(ProcId(0)), Some(5), buf, 64).await;
                    assert_eq!(p.read_u64(buf), i, "messages reordered");
                }
            }
        });
    }

    #[test]
    fn mixed_eager_and_rendezvous_interleave() {
        run_mpi(MP1, 2, |p, mpi| async move {
            let small = p.alloc(64);
            let big = p.alloc(4096);
            p.ctx().yield_now().await;
            if p.rank().0 == 0 {
                p.write_u64(small, 7);
                p.write_u64(big, 8);
                mpi.send(ProcId(1), 1, small, 8).await;
                // Rendezvous send blocks until the receiver pulls, so the
                // receiver must match tag 2 before it can see tag 3 (the
                // reverse order would be an unsafe MPI program).
                mpi.send(ProcId(1), 2, big, 4096).await;
                mpi.send(ProcId(1), 3, small, 8).await;
            } else {
                // Receive out of order among *arrived* messages: tag 2
                // (releasing the sender), then 3, then 1.
                let _ = mpi.recv(None, Some(2), big, 4096).await;
                assert_eq!(p.read_u64(big), 8);
                let _ = mpi.recv(None, Some(3), small, 64).await;
                let _ = mpi.recv(None, Some(1), small, 64).await;
                assert_eq!(p.read_u64(small), 7);
                assert_eq!(mpi.counts().1, 3);
            }
        });
    }

    #[test]
    #[should_panic(expected = "exceeds recv buffer")]
    fn oversized_message_panics_at_receiver() {
        run_mpi(MP1, 2, |p, mpi| async move {
            let buf = p.alloc(64);
            p.ctx().yield_now().await;
            if p.rank().0 == 0 {
                mpi.send(ProcId(1), 1, buf, 64).await;
            } else {
                let _ = mpi.recv(None, None, buf, 8).await;
            }
        });
    }
}
