//! Seeded, deterministic fault injection for the simulated interconnect.
//!
//! A [`FaultPlan`] describes *what* can go wrong on the wire — per-packet
//! drop, duplication, reordering (extra transit delay) and payload
//! corruption probabilities, plus node *stall windows* during which a
//! node's communication agent stops servicing its input — and a seed that
//! makes every run byte-reproducible. The network consults the plan's
//! [`FaultState`] once per transmitted packet; because the discrete-event
//! executor is single-threaded and deterministic, the same seed always
//! yields the same fault sequence.
//!
//! The layer above (the reliable-delivery protocol in `mproxy`) is
//! responsible for masking these faults; this module only injects them
//! and counts what it injected.
//!
//! The seeded fate-decision core (the PRNG, the per-packet Bernoulli
//! draw, probability and window validation) lives in
//! [`mproxy_model::fate`] and is shared with the native runtime's
//! injector, so a plan means the same thing in simulation and on real
//! threads.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use mproxy_model::fate::{check_probability, windows_overlap, PacketFates, SplitMix64};
pub use mproxy_model::fate::Fate;

use crate::NodeId;

/// A window of simulated time during which one node's communication agent
/// is frozen (services nothing, acknowledges nothing). Models a proxy
/// descheduled, wedged, or crashed-and-restarted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallWindow {
    /// The stalled node.
    pub node: NodeId,
    /// Window start, µs of simulated time.
    pub start_us: f64,
    /// Window end, µs of simulated time.
    pub end_us: f64,
}

/// A window of simulated time during which one node's communication agent
/// is *dead*: it crashed at `at_us`, losing all volatile state (sequence
/// tables, retransmit buffers, pending command-queue entries), and comes
/// back — empty-handed — at `restart_us`. Unlike a [`StallWindow`], which
/// merely delays service, a crash forces the reliable layer into a new
/// epoch with a resync handshake on restart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashWindow {
    /// The crashing node.
    pub node: NodeId,
    /// Instant of the crash, µs of simulated time.
    pub at_us: f64,
    /// Instant the restarted agent resumes service, µs of simulated time.
    pub restart_us: f64,
}

/// A seeded description of the faults to inject.
///
/// Built with the fluent methods; all probabilities are per transmitted
/// packet and independent.
///
/// # Examples
///
/// ```
/// use mproxy_simnet::FaultPlan;
///
/// let plan = FaultPlan::new(42)
///     .drop(0.01)
///     .duplicate(0.005)
///     .reorder(0.01, 20.0)
///     .corrupt(0.002)
///     .stall(1, 100.0, 400.0)
///     .crash(0, 600.0, 200.0);
/// assert_eq!(plan.seed, 42);
/// assert_eq!(plan.stalls.len(), 1);
/// assert_eq!(plan.crashes.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// PRNG seed; equal seeds give identical fault sequences.
    pub seed: u64,
    /// Probability a packet is silently lost.
    pub drop_p: f64,
    /// Probability a packet is delivered twice.
    pub dup_p: f64,
    /// Probability a packet is delayed past later traffic.
    pub reorder_p: f64,
    /// Probability a packet's payload arrives corrupted.
    pub corrupt_p: f64,
    /// Extra transit delay, µs, applied to reordered packets (scaled by a
    /// per-packet jitter draw in `[0.25, 1.25)`).
    pub reorder_extra_us: f64,
    /// Node stall windows.
    pub stalls: Vec<StallWindow>,
    /// Node crash windows.
    pub crashes: Vec<CrashWindow>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults.
    #[must_use]
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_p: 0.0,
            dup_p: 0.0,
            reorder_p: 0.0,
            corrupt_p: 0.0,
            reorder_extra_us: 20.0,
            stalls: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Sets the per-packet drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn drop(mut self, p: f64) -> FaultPlan {
        self.drop_p = check_probability(p, "drop");
        self
    }

    /// Sets the per-packet duplication probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn duplicate(mut self, p: f64) -> FaultPlan {
        self.dup_p = check_probability(p, "duplicate");
        self
    }

    /// Sets the per-packet reorder probability and the extra delay (µs)
    /// a reordered packet suffers.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or `extra_us` is negative or
    /// non-finite.
    #[must_use]
    pub fn reorder(mut self, p: f64, extra_us: f64) -> FaultPlan {
        self.reorder_p = check_probability(p, "reorder");
        assert!(
            extra_us.is_finite() && extra_us >= 0.0,
            "reorder delay must be finite and >= 0"
        );
        self.reorder_extra_us = extra_us;
        self
    }

    /// Sets the per-packet payload-corruption probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn corrupt(mut self, p: f64) -> FaultPlan {
        self.corrupt_p = check_probability(p, "corrupt");
        self
    }

    /// Adds a stall window for `node` over `[start_us, end_us)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or inverted, or if it overlaps an
    /// existing stall window on the same node — two overlapping windows
    /// on one node have no coherent meaning (which end does the agent
    /// resume at?) and used to misbehave silently at simulation time.
    #[must_use]
    pub fn stall(mut self, node: NodeId, start_us: f64, end_us: f64) -> FaultPlan {
        assert!(start_us < end_us, "empty stall window [{start_us}, {end_us})");
        if let Some(w) = self
            .stalls
            .iter()
            .find(|w| w.node == node && windows_overlap(w.start_us, w.end_us, start_us, end_us))
        {
            panic!(
                "stall window [{start_us}, {end_us}) overlaps [{}, {}) on node {node}",
                w.start_us, w.end_us
            );
        }
        self.stalls.push(StallWindow {
            node,
            start_us,
            end_us,
        });
        self
    }

    /// Adds a crash window: `node`'s communication agent dies at `at_us`,
    /// loses all volatile state, and restarts `downtime_us` later.
    ///
    /// # Panics
    ///
    /// Panics if `downtime_us` is not finite and positive, or if the
    /// window `[at_us, at_us + downtime_us)` overlaps an existing crash
    /// window on the same node.
    #[must_use]
    pub fn crash(mut self, node: NodeId, at_us: f64, downtime_us: f64) -> FaultPlan {
        assert!(
            downtime_us.is_finite() && downtime_us > 0.0,
            "crash downtime must be finite and > 0, got {downtime_us}"
        );
        let restart_us = at_us + downtime_us;
        if let Some(w) = self
            .crashes
            .iter()
            .find(|w| w.node == node && windows_overlap(w.at_us, w.restart_us, at_us, restart_us))
        {
            panic!(
                "crash window [{at_us}, {restart_us}) overlaps [{}, {}) on node {node}",
                w.at_us, w.restart_us
            );
        }
        self.crashes.push(CrashWindow {
            node,
            at_us,
            restart_us,
        });
        self
    }

    /// Crash windows scheduled for `node`, in the order they were added.
    pub fn crashes_on(&self, node: NodeId) -> impl Iterator<Item = CrashWindow> + '_ {
        self.crashes.iter().copied().filter(move |w| w.node == node)
    }

    /// True if the plan injects no packet faults, no stalls and no
    /// crashes.
    #[must_use]
    pub fn is_benign(&self) -> bool {
        self.packet_fates().is_benign() && self.stalls.is_empty() && self.crashes.is_empty()
    }

    /// The plan's per-packet Bernoulli specification, in the shared
    /// fate-core representation.
    #[must_use]
    pub fn packet_fates(&self) -> PacketFates {
        PacketFates {
            drop_p: self.drop_p,
            dup_p: self.dup_p,
            reorder_p: self.reorder_p,
            corrupt_p: self.corrupt_p,
            reorder_extra_us: self.reorder_extra_us,
        }
    }
}

/// Counters of injected faults, for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Packets judged (= packets that finished serialisation).
    pub packets: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Packets duplicated.
    pub duplicated: u64,
    /// Packets delayed out of order.
    pub reordered: u64,
    /// Packets delivered with a corrupted payload.
    pub corrupted: u64,
}

/// Live per-run fault state: the plan, its PRNG, and injection counters.
///
/// One instance is shared by every adapter of a faulty [`crate::Network`];
/// draws happen in deterministic discrete-event order, so a seed fixes
/// the whole fault sequence.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    rng: RefCell<SplitMix64>,
    packets: Cell<u64>,
    dropped: Cell<u64>,
    duplicated: Cell<u64>,
    reordered: Cell<u64>,
    corrupted: Cell<u64>,
}

impl FaultState {
    /// Creates the live state for `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Rc<FaultState> {
        let rng = RefCell::new(SplitMix64::new(plan.seed));
        Rc::new(FaultState {
            plan,
            rng,
            packets: Cell::new(0),
            dropped: Cell::new(0),
            duplicated: Cell::new(0),
            reordered: Cell::new(0),
            corrupted: Cell::new(0),
        })
    }

    /// The plan this state was built from.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Judges one packet via the shared fate core. The core always draws
    /// the same number of variates, so the stream position depends only
    /// on how many packets were judged.
    pub fn judge(&self) -> Fate {
        let fate = self
            .plan
            .packet_fates()
            .judge(&mut self.rng.borrow_mut());
        self.packets.set(self.packets.get() + 1);
        if fate.drop {
            self.dropped.set(self.dropped.get() + 1);
        } else {
            // Only delivered packets can manifest the remaining faults.
            if fate.duplicate {
                self.duplicated.set(self.duplicated.get() + 1);
            }
            if fate.reordered() {
                self.reordered.set(self.reordered.get() + 1);
            }
            if fate.corrupt {
                self.corrupted.set(self.corrupted.get() + 1);
            }
        }
        fate
    }

    /// If `node` is inside a stall window at `now_us`, the window's end;
    /// otherwise `None`. Construction rejects overlapping windows, so at
    /// most one window can contain any instant.
    #[must_use]
    pub fn stall_end(&self, node: NodeId, now_us: f64) -> Option<f64> {
        self.plan
            .stalls
            .iter()
            .find(|w| w.node == node && w.start_us <= now_us && now_us < w.end_us)
            .map(|w| w.end_us)
    }

    /// If `node` is crashed (dead, pre-restart) at `now_us`, the restart
    /// instant; otherwise `None`.
    #[must_use]
    pub fn crash_end(&self, node: NodeId, now_us: f64) -> Option<f64> {
        self.plan
            .crashes
            .iter()
            .find(|w| w.node == node && w.at_us <= now_us && now_us < w.restart_us)
            .map(|w| w.restart_us)
    }

    /// Snapshot of the injection counters.
    #[must_use]
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            packets: self.packets.get(),
            dropped: self.dropped.get(),
            duplicated: self.duplicated.get(),
            reordered: self.reordered.get(),
            corrupted: self.corrupted.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_fates() {
        let mk = || FaultState::new(FaultPlan::new(7).drop(0.3).duplicate(0.2).corrupt(0.1));
        let (a, b) = (mk(), mk());
        for _ in 0..200 {
            assert_eq!(a.judge(), b.judge());
        }
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn rates_roughly_respected() {
        let f = FaultState::new(FaultPlan::new(1).drop(0.25));
        for _ in 0..4000 {
            let _ = f.judge();
        }
        let c = f.counts();
        assert_eq!(c.packets, 4000);
        let rate = c.dropped as f64 / c.packets as f64;
        assert!((0.20..0.30).contains(&rate), "drop rate {rate}");
        assert_eq!(c.duplicated + c.reordered + c.corrupted, 0);
    }

    #[test]
    fn benign_plan_judges_nothing_interesting() {
        let plan = FaultPlan::new(0);
        assert!(plan.is_benign());
        let f = FaultState::new(plan);
        for _ in 0..100 {
            assert_eq!(
                f.judge(),
                Fate {
                    dup_extra_us: 1.0,
                    ..Fate::default()
                }
            );
        }
    }

    #[test]
    fn stall_windows_queried_by_time_and_node() {
        let f = FaultState::new(
            FaultPlan::new(0)
                .stall(1, 10.0, 20.0)
                .stall(1, 25.0, 40.0)
                .stall(2, 0.0, 5.0),
        );
        assert_eq!(f.stall_end(1, 5.0), None);
        assert_eq!(f.stall_end(1, 12.0), Some(20.0));
        assert_eq!(f.stall_end(1, 22.0), None); // between windows
        assert_eq!(f.stall_end(1, 25.0), Some(40.0)); // start is inclusive
        assert_eq!(f.stall_end(1, 40.0), None); // end is exclusive
        assert_eq!(f.stall_end(2, 3.0), Some(5.0));
        assert_eq!(f.stall_end(0, 3.0), None);
    }

    #[test]
    fn crash_windows_queried_by_time_and_node() {
        let plan = FaultPlan::new(0).crash(1, 100.0, 50.0).crash(1, 400.0, 25.0);
        assert!(!plan.is_benign());
        assert_eq!(plan.crashes_on(1).count(), 2);
        assert_eq!(plan.crashes_on(0).count(), 0);
        let f = FaultState::new(plan);
        assert_eq!(f.crash_end(1, 99.0), None);
        assert_eq!(f.crash_end(1, 100.0), Some(150.0)); // crash instant inclusive
        assert_eq!(f.crash_end(1, 149.0), Some(150.0));
        assert_eq!(f.crash_end(1, 150.0), None); // restart instant exclusive
        assert_eq!(f.crash_end(1, 410.0), Some(425.0));
        assert_eq!(f.crash_end(0, 110.0), None);
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn probability_validated() {
        let _ = FaultPlan::new(0).drop(1.5);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_stalls_on_one_node_rejected() {
        let _ = FaultPlan::new(0).stall(1, 10.0, 20.0).stall(1, 15.0, 40.0);
    }

    #[test]
    fn touching_and_cross_node_stalls_allowed() {
        // End is exclusive, so back-to-back windows do not overlap; other
        // nodes are independent.
        let plan = FaultPlan::new(0)
            .stall(1, 10.0, 20.0)
            .stall(1, 20.0, 30.0)
            .stall(2, 12.0, 18.0);
        assert_eq!(plan.stalls.len(), 3);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_crashes_on_one_node_rejected() {
        let _ = FaultPlan::new(0).crash(1, 100.0, 50.0).crash(1, 120.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "finite and > 0")]
    fn zero_downtime_crash_rejected() {
        let _ = FaultPlan::new(0).crash(1, 100.0, 0.0);
    }
}
