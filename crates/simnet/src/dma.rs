//! The per-node DMA engine.
//!
//! "Since pinning is expensive, we use programmed I/O to transfer small
//! blocks and pinned DMA to transfer large blocks of data" (Section 2).
//! Custom hardware pre-pins buffers at setup time and streams at full
//! engine bandwidth; the software approaches (message proxy, system call)
//! dynamically pin and unpin each page around its transfer, which caps
//! their peak bandwidth at `page / (page/bw + pin + unpin)` — exactly the
//! 22.3 and 86.7 MB/s of Table 4.

use mproxy_des::{Dur, Resource, SimCtx};

use crate::wire_us;

/// DMA engine parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaParams {
    /// Peak engine bandwidth, MB/s.
    pub bandwidth_mbs: f64,
    /// Cost to pin a page before transfer (0 when pre-pinned).
    pub pin_us: f64,
    /// Cost to unpin a page after transfer (0 when pre-pinned).
    pub unpin_us: f64,
    /// Pinning granularity in bytes.
    pub page_bytes: u32,
}

impl DmaParams {
    /// Creates parameters, validating them.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth or page size is non-positive, or pin costs
    /// are negative.
    #[must_use]
    pub fn new(bandwidth_mbs: f64, pin_us: f64, unpin_us: f64, page_bytes: u32) -> Self {
        assert!(bandwidth_mbs > 0.0, "bandwidth must be > 0");
        assert!(page_bytes > 0, "page size must be > 0");
        assert!(pin_us >= 0.0 && unpin_us >= 0.0, "pin costs must be >= 0");
        DmaParams {
            bandwidth_mbs,
            pin_us,
            unpin_us,
            page_bytes,
        }
    }

    /// True if buffers are pre-pinned (custom-hardware style).
    #[must_use]
    pub fn prepinned(&self) -> bool {
        self.pin_us == 0.0 && self.unpin_us == 0.0
    }

    /// Total engine time to move `nbytes`, including per-page pin/unpin.
    #[must_use]
    pub fn transfer_time(&self, nbytes: u32) -> Dur {
        if nbytes == 0 {
            return Dur::ZERO;
        }
        let xfer = wire_us(nbytes, self.bandwidth_mbs);
        let pages = nbytes.div_ceil(self.page_bytes);
        Dur::from_us(xfer + f64::from(pages) * (self.pin_us + self.unpin_us))
    }

    /// Pin + unpin cost alone for an `nbytes` transfer (what a *receiving*
    /// node pays while its DMA engine streams concurrently with the wire).
    #[must_use]
    pub fn pinning_us(&self, nbytes: u32) -> f64 {
        if nbytes == 0 {
            return 0.0;
        }
        let pages = nbytes.div_ceil(self.page_bytes);
        f64::from(pages) * (self.pin_us + self.unpin_us)
    }

    /// Effective streaming bandwidth for page-sized transfers, MB/s.
    #[must_use]
    pub fn effective_bandwidth_mbs(&self) -> f64 {
        let page = f64::from(self.page_bytes);
        page / self.transfer_time(self.page_bytes).as_us()
    }
}

/// A node's DMA engine: a single-server resource charging
/// [`DmaParams::transfer_time`] per transfer.
#[derive(Debug, Clone)]
pub struct DmaEngine {
    params: DmaParams,
    engine: Resource,
    ctx: SimCtx,
}

impl DmaEngine {
    /// Creates a DMA engine on the node named by `tag`.
    #[must_use]
    pub fn new(ctx: &SimCtx, tag: impl std::fmt::Display, params: DmaParams) -> Self {
        DmaEngine {
            params,
            engine: Resource::new(ctx, format!("dma[{tag}]"), 1),
            ctx: ctx.clone(),
        }
    }

    /// Streams `nbytes` through the engine, contending FIFO with other
    /// transfers on the same node.
    pub async fn transfer(&self, nbytes: u32) {
        if nbytes == 0 {
            return;
        }
        self.engine.hold(self.params.transfer_time(nbytes)).await;
    }

    /// Engine parameters.
    #[must_use]
    pub fn params(&self) -> DmaParams {
        self.params
    }

    /// Engine utilisation since simulation start.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.engine.utilization(self.ctx.now())
    }

    /// Completed transfers.
    #[must_use]
    pub fn transfers(&self) -> u64 {
        self.engine.acquisitions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mproxy_des::Simulation;

    #[test]
    fn prepinned_streams_at_engine_bandwidth() {
        let p = DmaParams::new(150.0, 0.0, 0.0, 4096);
        assert!(p.prepinned());
        assert!((p.effective_bandwidth_mbs() - 150.0).abs() < 0.5);
    }

    #[test]
    fn pinning_caps_bandwidth_to_table4_values() {
        // MP0: 25 MB/s engine, 10+10 µs pin/unpin → 22.3 MB/s.
        let mp0 = DmaParams::new(25.0, 10.0, 10.0, 4096);
        assert!((mp0.effective_bandwidth_mbs() - 22.28).abs() < 0.05);
        // MP1/MP2/SW1: 150 MB/s engine → 86.7 MB/s.
        let mp1 = DmaParams::new(150.0, 10.0, 10.0, 4096);
        assert!((mp1.effective_bandwidth_mbs() - 86.7).abs() < 0.2);
    }

    #[test]
    fn transfer_time_rounds_pages_up() {
        let p = DmaParams::new(100.0, 5.0, 5.0, 4096);
        // 4097 bytes = 2 pages: 40.97 µs wire + 20 µs pinning.
        let t = p.transfer_time(4097);
        assert!((t.as_us() - 60.97).abs() < 0.01);
        assert_eq!(p.transfer_time(0), Dur::ZERO);
    }

    #[test]
    fn engine_contention_serializes() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let dma = DmaEngine::new(&ctx, 0, DmaParams::new(100.0, 0.0, 0.0, 4096));
        for _ in 0..2 {
            let dma = dma.clone();
            sim.spawn(async move { dma.transfer(1000).await });
        }
        let r = sim.run();
        // Two 10 µs transfers back to back.
        assert_eq!(r.end.as_us(), 20.0);
        assert_eq!(dma.transfers(), 2);
        assert!((dma.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_transfer_is_free() {
        let sim = Simulation::new();
        let dma = DmaEngine::new(&sim.ctx(), 0, DmaParams::new(100.0, 10.0, 10.0, 4096));
        sim.spawn(async move { dma.transfer(0).await });
        let r = sim.run();
        assert_eq!(r.end.as_ns(), 0);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn invalid_bandwidth_rejected() {
        let _ = DmaParams::new(0.0, 1.0, 1.0, 4096);
    }
}
