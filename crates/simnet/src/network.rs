//! Network adapters and the switch.
//!
//! Each node's adapter presents "an input and output FIFO interface to the
//! network" (Section 4). The output port is a FIFO-fair [`Resource`] that
//! serialises packets at link bandwidth; the switch adds a fixed transit
//! latency and delivers into the destination node's input FIFO channel.
//! Per-link ordering is preserved: serialisation completes in FIFO order
//! and every packet sees the same transit latency.

use std::rc::Rc;

use mproxy_des::{Channel, Dur, Resource, SimCtx};

use crate::fault::FaultState;
use crate::{wire_us, FaultPlan, HEADER_BYTES};

/// Index of a node (an SMP chassis) in the cluster.
pub type NodeId = usize;

/// Latency and bandwidth of the interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// One-way transit latency, µs.
    pub latency_us: f64,
    /// Link bandwidth, MB/s.
    pub bandwidth_mbs: f64,
}

impl LinkParams {
    /// Creates link parameters.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive or non-finite.
    #[must_use]
    pub fn new(latency_us: f64, bandwidth_mbs: f64) -> Self {
        assert!(
            latency_us.is_finite() && latency_us >= 0.0,
            "latency must be finite and >= 0"
        );
        assert!(
            bandwidth_mbs.is_finite() && bandwidth_mbs > 0.0,
            "bandwidth must be finite and > 0"
        );
        LinkParams {
            latency_us,
            bandwidth_mbs,
        }
    }

    /// Serialisation time of a packet with `payload` bytes (header added).
    #[must_use]
    pub fn serialize_time(&self, payload_bytes: u32) -> Dur {
        Dur::from_us(wire_us(payload_bytes + HEADER_BYTES, self.bandwidth_mbs))
    }

    /// Transit latency as a duration.
    #[must_use]
    pub fn transit(&self) -> Dur {
        Dur::from_us(self.latency_us)
    }
}

/// A packet in flight: a typed message plus accounting metadata.
#[derive(Debug, Clone)]
pub struct Packet<M> {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Protocol message (defined by the layer above).
    pub message: M,
    /// Payload size in bytes, used for serialisation timing and statistics
    /// (headers are accounted separately).
    pub payload_bytes: u32,
    /// Link-layer sequence number stamped by [`NetPort::send_tagged`]
    /// (0 = unsequenced; plain [`NetPort::send`] always stamps 0).
    pub seq: u64,
    /// Sender-computed payload checksum (0 for unsequenced traffic unless
    /// the sender chose otherwise).
    pub checksum: u64,
    /// Set by fault injection when the payload was damaged in flight. The
    /// message content itself is left intact so the simulation stays
    /// deterministic; receivers treat this flag as a checksum mismatch.
    pub corrupted: bool,
}

struct AdapterShared<M> {
    node: NodeId,
    tx_port: Resource,
    rx_fifo: Channel<Packet<M>>,
    link: LinkParams,
    ctx: SimCtx,
    faults: Option<Rc<FaultState>>,
}

/// One node's network adapter: a serialising output port plus an input
/// FIFO.
///
/// Cloneable; all clones refer to the same adapter.
pub struct Adapter<M> {
    shared: std::rc::Rc<AdapterShared<M>>,
}

impl<M> Clone for Adapter<M> {
    fn clone(&self) -> Self {
        Adapter {
            shared: std::rc::Rc::clone(&self.shared),
        }
    }
}

impl<M: 'static> Adapter<M> {
    /// Receives the next packet from this node's input FIFO.
    pub async fn recv(&self) -> Option<Packet<M>> {
        self.shared.rx_fifo.recv().await
    }

    /// Non-blocking poll of the input FIFO.
    pub fn try_recv(&self) -> Option<Packet<M>> {
        self.shared.rx_fifo.try_recv()
    }

    /// The input FIFO channel itself (for proxies that multiplex it with
    /// command queues).
    #[must_use]
    pub fn rx_fifo(&self) -> Channel<Packet<M>> {
        self.shared.rx_fifo.clone()
    }

    /// Utilisation of the output port since simulation start.
    #[must_use]
    pub fn tx_utilization(&self) -> f64 {
        self.shared.tx_port.utilization(self.shared.ctx.now())
    }

    /// Number of packets transmitted.
    #[must_use]
    pub fn packets_sent(&self) -> u64 {
        self.shared.tx_port.acquisitions()
    }

    /// This adapter's node id.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.shared.node
    }

    /// Link parameters of the attached network.
    #[must_use]
    pub fn link(&self) -> LinkParams {
        self.shared.link
    }
}

impl<M> std::fmt::Debug for Adapter<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Adapter")
            .field("node", &self.shared.node)
            .finish()
    }
}

/// The cluster interconnect: one adapter per node plus a latency-only
/// switch.
pub struct Network<M> {
    adapters: Vec<Adapter<M>>,
    link: LinkParams,
    faults: Option<Rc<FaultState>>,
}

impl<M: 'static> Network<M> {
    /// Builds a network of `nodes` adapters joined by a switch with the
    /// given link parameters.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    #[must_use]
    pub fn new(ctx: &SimCtx, nodes: usize, link: LinkParams) -> Self {
        Self::build(ctx, nodes, link, None)
    }

    /// Builds a network whose packet deliveries are subjected to `plan`'s
    /// seeded faults. The plan's stall windows are *not* enforced here
    /// (the network keeps delivering into input FIFOs); the protocol layer
    /// queries [`Network::fault_state`] to freeze its agents.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    #[must_use]
    pub fn with_faults(ctx: &SimCtx, nodes: usize, link: LinkParams, plan: FaultPlan) -> Self {
        Self::build(ctx, nodes, link, Some(FaultState::new(plan)))
    }

    fn build(
        ctx: &SimCtx,
        nodes: usize,
        link: LinkParams,
        faults: Option<Rc<FaultState>>,
    ) -> Self {
        assert!(nodes > 0, "network needs at least one node");
        let adapters = (0..nodes)
            .map(|node| Adapter {
                shared: std::rc::Rc::new(AdapterShared {
                    node,
                    tx_port: Resource::new(ctx, format!("tx[{node}]"), 1),
                    rx_fifo: Channel::unbounded(),
                    link,
                    ctx: ctx.clone(),
                    faults: faults.clone(),
                }),
            })
            .collect();
        Network {
            adapters,
            link,
            faults,
        }
    }

    /// The shared fault state, if this network was built with faults.
    #[must_use]
    pub fn fault_state(&self) -> Option<Rc<FaultState>> {
        self.faults.clone()
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.adapters.len()
    }

    /// True if the network has no nodes (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adapters.is_empty()
    }

    /// Link parameters.
    #[must_use]
    pub fn link(&self) -> LinkParams {
        self.link
    }

    /// A handle to node `node`'s adapter.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn adapter(&self, node: NodeId) -> NetPort<M> {
        assert!(node < self.adapters.len(), "node {node} out of range");
        NetPort {
            local: self.adapters[node].clone(),
            peers: self.adapters.clone(),
        }
    }
}

impl<M> std::fmt::Debug for Network<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.adapters.len())
            .field("link", &self.link)
            .finish()
    }
}

/// A node's view of the network: its own adapter plus switch routes to
/// every peer.
pub struct NetPort<M> {
    local: Adapter<M>,
    peers: Vec<Adapter<M>>,
}

impl<M> Clone for NetPort<M> {
    fn clone(&self) -> Self {
        NetPort {
            local: self.local.clone(),
            peers: self.peers.clone(),
        }
    }
}

impl<M: Clone + 'static> NetPort<M> {
    /// Sends `message` to node `dst`: serialise on the local output port,
    /// transit the switch, deliver into `dst`'s input FIFO.
    ///
    /// Returns once the packet has left the local output port.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range.
    pub async fn send(&self, dst: NodeId, message: M, payload_bytes: u32) {
        self.send_tagged(dst, message, payload_bytes, 0, 0).await;
    }

    /// Like [`NetPort::send`] but stamps a link-layer sequence number and
    /// checksum onto the packet. On a faulty network this is also where
    /// the packet's fate (drop/duplicate/reorder/corrupt) is decided —
    /// after serialisation, so lost packets still consumed wire time.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range.
    pub async fn send_tagged(
        &self,
        dst: NodeId,
        message: M,
        payload_bytes: u32,
        seq: u64,
        checksum: u64,
    ) {
        assert!(
            dst < self.peers.len(),
            "destination node {dst} out of range"
        );
        let s = &self.local.shared;
        let guard = s.tx_port.acquire().await;
        guard.delay(s.link.serialize_time(payload_bytes)).await;
        drop(guard);
        let fate = match &s.faults {
            Some(f) => f.judge(),
            None => crate::Fate::default(),
        };
        if fate.drop {
            return;
        }
        let mk = |message: M, corrupted: bool| Packet {
            src: s.node,
            dst,
            message,
            payload_bytes,
            seq,
            checksum,
            corrupted,
        };
        let rx = self.peers[dst].shared.rx_fifo.clone();
        let transit = s.link.transit();
        if fate.duplicate {
            let dup = mk(message.clone(), false);
            let rx = rx.clone();
            let delay = transit + Dur::from_us(fate.dup_extra_us);
            s.ctx.call_after(delay, move || {
                let _ = rx.try_send(dup);
            });
        }
        let pkt = mk(message, fate.corrupt);
        let delay = transit + Dur::from_us(fate.extra_us);
        s.ctx.call_after(delay, move || {
            let _ = rx.try_send(pkt);
        });
    }

    /// Receives the next packet addressed to this node.
    pub async fn recv(&self) -> Option<Packet<M>> {
        self.local.recv().await
    }

    /// Non-blocking poll of this node's input FIFO.
    pub fn try_recv(&self) -> Option<Packet<M>> {
        self.local.try_recv()
    }

    /// The local input FIFO (for multiplexed polling loops).
    #[must_use]
    pub fn rx_fifo(&self) -> Channel<Packet<M>> {
        self.local.rx_fifo()
    }

    /// The local node id.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.local.node()
    }

    /// Number of nodes reachable.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.peers.len()
    }

    /// Link parameters.
    #[must_use]
    pub fn link(&self) -> LinkParams {
        self.local.link()
    }

    /// Utilisation of the local output port.
    #[must_use]
    pub fn tx_utilization(&self) -> f64 {
        self.local.tx_utilization()
    }

    /// Packets sent from this node.
    #[must_use]
    pub fn packets_sent(&self) -> u64 {
        self.local.packets_sent()
    }
}

impl<M> std::fmt::Debug for NetPort<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetPort")
            .field("node", &self.local.shared.node)
            .field("nodes", &self.peers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mproxy_des::Simulation;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn two_node_net(sim: &Simulation) -> Network<u32> {
        Network::new(&sim.ctx(), 2, LinkParams::new(1.0, 100.0))
    }

    #[test]
    fn delivery_includes_serialization_and_latency() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let net = two_node_net(&sim);
        let (a, b) = (net.adapter(0), net.adapter(1));
        let arrive = Rc::new(RefCell::new(0.0));
        let probe = Rc::clone(&arrive);
        sim.spawn(async move { a.send(1, 7, 84).await });
        sim.spawn(async move {
            let pkt = b.recv().await.unwrap();
            assert_eq!(pkt.message, 7);
            assert_eq!(pkt.src, 0);
            *probe.borrow_mut() = ctx.now().as_us();
        });
        sim.run();
        // (84 + 16) bytes / 100 MB/s = 1.0 µs serialise + 1.0 µs transit.
        assert_eq!(*arrive.borrow(), 2.0);
    }

    #[test]
    fn output_port_serializes_concurrent_sends() {
        let sim = Simulation::new();
        let net = two_node_net(&sim);
        let a = net.adapter(0);
        let b = net.adapter(1);
        let times = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let a = a.clone();
            sim.spawn(async move { a.send(1, i, 184).await });
        }
        {
            let times = Rc::clone(&times);
            let ctx = sim.ctx();
            sim.spawn(async move {
                for _ in 0..3 {
                    let pkt = b.recv().await.unwrap();
                    times.borrow_mut().push((pkt.message, ctx.now().as_us()));
                }
            });
        }
        sim.run();
        // Each packet is 200 bytes → 2 µs on the wire; port serialises, so
        // arrivals at 3, 5, 7 µs, in FIFO order.
        assert_eq!(*times.borrow(), vec![(0, 3.0), (1, 5.0), (2, 7.0)]);
        assert_eq!(a.packets_sent(), 3);
    }

    #[test]
    fn per_destination_ordering_preserved() {
        let sim = Simulation::new();
        let net = two_node_net(&sim);
        let a = net.adapter(0);
        let b = net.adapter(1);
        let got = Rc::new(RefCell::new(Vec::new()));
        let probe = Rc::clone(&got);
        sim.spawn(async move {
            for i in 0..10u32 {
                a.send(1, i, (i % 3) * 400).await;
            }
        });
        sim.spawn(async move {
            for _ in 0..10 {
                let msg = b.recv().await.unwrap().message;
                probe.borrow_mut().push(msg);
            }
        });
        sim.run();
        assert_eq!(*got.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn tx_utilization_reflects_wire_time() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let net = two_node_net(&sim);
        let a = net.adapter(0);
        let b = net.adapter(1);
        sim.spawn({
            let a = a.clone();
            async move { a.send(1, 0, 984).await } // 10 µs on the wire
        });
        sim.spawn(async move {
            b.recv().await.unwrap();
        });
        sim.run();
        // 10 µs busy out of 11 µs total (10 serialise + 1 transit).
        let u = a.tx_utilization();
        assert!((u - 10.0 / 11.0).abs() < 1e-9, "u = {u}");
        let _ = ctx;
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_to_unknown_node_panics() {
        let sim = Simulation::new();
        let net = two_node_net(&sim);
        let a = net.adapter(0);
        sim.spawn(async move { a.send(7, 0, 0).await });
        sim.run();
    }

    #[test]
    fn link_params_validation() {
        let l = LinkParams::new(0.0, 50.0);
        assert_eq!(l.transit(), mproxy_des::Dur::ZERO);
        assert_eq!(l.serialize_time(84).as_us(), 2.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = LinkParams::new(1.0, 0.0);
    }

    #[test]
    fn plain_send_stamps_unsequenced_clean_packets() {
        let sim = Simulation::new();
        let net = two_node_net(&sim);
        let (a, b) = (net.adapter(0), net.adapter(1));
        sim.spawn(async move { a.send(1, 9, 8).await });
        let got = Rc::new(RefCell::new(None));
        let probe = Rc::clone(&got);
        sim.spawn(async move {
            let pkt = b.recv().await.unwrap();
            *probe.borrow_mut() = Some((pkt.seq, pkt.checksum, pkt.corrupted));
        });
        sim.run();
        assert_eq!(*got.borrow(), Some((0, 0, false)));
        assert!(net.fault_state().is_none());
    }

    #[test]
    fn dropped_packets_never_arrive_and_are_counted() {
        let sim = Simulation::new();
        let net: Network<u32> = Network::with_faults(
            &sim.ctx(),
            2,
            LinkParams::new(1.0, 100.0),
            FaultPlan::new(3).drop(1.0),
        );
        let a = net.adapter(0);
        let b = net.adapter(1);
        sim.spawn(async move {
            for i in 0..5u32 {
                a.send(1, i, 8).await;
            }
        });
        sim.run();
        assert!(b.try_recv().is_none());
        let c = net.fault_state().unwrap().counts();
        assert_eq!((c.packets, c.dropped), (5, 5));
    }

    #[test]
    fn duplicated_packet_arrives_twice_with_tag_intact() {
        let sim = Simulation::new();
        let net: Network<u32> = Network::with_faults(
            &sim.ctx(),
            2,
            LinkParams::new(1.0, 100.0),
            FaultPlan::new(3).duplicate(1.0),
        );
        let a = net.adapter(0);
        let b = net.adapter(1);
        sim.spawn(async move { a.send_tagged(1, 7, 8, 42, 0xfeed).await });
        let got = Rc::new(RefCell::new(Vec::new()));
        let probe = Rc::clone(&got);
        sim.spawn(async move {
            for _ in 0..2 {
                let pkt = b.recv().await.unwrap();
                probe.borrow_mut().push((pkt.message, pkt.seq, pkt.checksum));
            }
        });
        sim.run();
        assert_eq!(*got.borrow(), vec![(7, 42, 0xfeed), (7, 42, 0xfeed)]);
        assert_eq!(net.fault_state().unwrap().counts().duplicated, 1);
    }

    #[test]
    fn corruption_flags_payload_without_mutating_it() {
        let sim = Simulation::new();
        let net: Network<u32> = Network::with_faults(
            &sim.ctx(),
            2,
            LinkParams::new(1.0, 100.0),
            FaultPlan::new(3).corrupt(1.0),
        );
        let a = net.adapter(0);
        let b = net.adapter(1);
        sim.spawn(async move { a.send(1, 5, 8).await });
        let got = Rc::new(RefCell::new(None));
        let probe = Rc::clone(&got);
        sim.spawn(async move {
            let pkt = b.recv().await.unwrap();
            *probe.borrow_mut() = Some((pkt.message, pkt.corrupted));
        });
        sim.run();
        assert_eq!(*got.borrow(), Some((5, true)));
    }
}
