//! # mproxy-simnet — simulated SMP-cluster hardware
//!
//! The hardware substrate under the paper's evaluation: commodity SMP nodes
//! joined by a switch, each with a network adapter exposing input/output
//! FIFOs and a DMA engine. Mirrors the paper's modelling assumptions:
//!
//! * "aggressive network interfaces that sit on the memory bus";
//! * per-node contention for the adapter's transmit port and the DMA
//!   engine is modelled (FIFO resources);
//! * memory-bus and switch contention are *not* modelled ("for simplicity
//!   and efficiency, the models do not model memory bus and network switch
//!   contention") — the switch is a pure latency pipe;
//! * small transfers use programmed I/O, large transfers use DMA with
//!   dynamic per-page pinning (except custom hardware, which pre-pins).
//!
//! The crate is generic over the message type `M` carried in packets, so
//! the protocol layer above defines its own wire format.
//!
//! # Examples
//!
//! ```
//! use mproxy_des::Simulation;
//! use mproxy_simnet::{LinkParams, Network};
//!
//! let sim = Simulation::new();
//! let ctx = sim.ctx();
//! let net: Network<&'static str> = Network::new(&ctx, 2, LinkParams::new(1.0, 175.0));
//! let tx = net.adapter(0);
//! let rx = net.adapter(1);
//! sim.spawn(async move { tx.send(1, "ping", 32).await; });
//! sim.spawn(async move {
//!     let pkt = rx.recv().await.unwrap();
//!     assert_eq!(pkt.message, "ping");
//! });
//! assert!(sim.run().completed_cleanly());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dma;
mod fault;
mod network;

pub use dma::{DmaEngine, DmaParams};
pub use fault::{CrashWindow, Fate, FaultCounts, FaultPlan, FaultState, StallWindow};
pub use network::{Adapter, LinkParams, NetPort, Network, NodeId, Packet};

/// Bytes of network header prepended to every packet (opcode, addresses,
/// sizes, sync descriptors).
pub const HEADER_BYTES: u32 = 16;

/// Transfer time in microseconds of `nbytes` at `mbs` MB/s (1 MB/s = 1
/// byte/µs, the convention the paper's bandwidth numbers use).
///
/// # Examples
///
/// ```
/// assert_eq!(mproxy_simnet::wire_us(4096, 25.0), 163.84);
/// ```
#[must_use]
pub fn wire_us(nbytes: u32, mbs: f64) -> f64 {
    assert!(mbs > 0.0, "bandwidth must be positive");
    f64::from(nbytes) / mbs
}
