//! Developer utility: wall-clock and simulated-time cost of each app at
//! the harness (Small) size on 16 processors, with Table 6-style traffic.
//!
//! Run: `cargo run --release -p mproxy-apps --example timing`

use mproxy_apps::{run_app_flat, AppId, AppSize};
fn main() {
    for app in AppId::ALL {
        let t = std::time::Instant::now();
        let r = run_app_flat(app, mproxy_model::MP1, 16, AppSize::Small);
        println!("{:<10} wall {:>6.2}s  sim {:>10.0}us  ops {:>7}  avg {:>6.0}B rate {:>6.2}/ms util {:>5.1}%",
            app.name(), t.elapsed().as_secs_f64(), r.elapsed_us, r.traffic.total_ops,
            r.traffic.avg_msg_bytes, r.traffic.msg_rate_per_ms, r.traffic.interface_utilization*100.0);
    }
}
