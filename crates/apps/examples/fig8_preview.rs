//! Developer utility: quick Figure 8 shape check (16-processor speedups
//! for five representative apps across all design points).
//!
//! Run: `cargo run --release -p mproxy-apps --example fig8_preview`

use mproxy_apps::{run_app_flat, AppId, AppSize};
use mproxy_model::{ALL_DESIGN_POINTS, HW1};
fn main() {
    for app in [
        AppId::Sample,
        AppId::Wator,
        AppId::Moldy,
        AppId::PRay,
        AppId::Fft,
    ] {
        let t1 = run_app_flat(app, HW1, 1, AppSize::Small).elapsed_us;
        print!("{:<10}", app.name());
        for d in ALL_DESIGN_POINTS {
            let t16 = run_app_flat(app, d, 16, AppSize::Small).elapsed_us;
            print!("  {}={:>5.2}", d.name, t1 / t16);
        }
        println!();
    }
}
