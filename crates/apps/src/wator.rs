//! Wator: n-body simulation of fish in a current (Split-C).
//!
//! The paper: Wator "spends a significant amount of time using GETs to
//! read the positions and masses of fish mapped remotely when computing
//! the forces acting on fish that are mapped locally" — frequent, small
//! (40-byte) messages; with Sample, the most communication-intensive
//! program in the suite (Table 6: 19 ops/ms/proc on HW1).

use mproxy::ProcId;
use mproxy_splitc::GlobalPtr;

use crate::common::{fold_checksum, partition, AppSize, Lcg, World};

/// Compute-per-communication calibration: matches the per-processor
/// message rates of Table 6 at the Small problem size (see DESIGN.md on
/// the deterministic compute model).
const WORK_SCALE: u64 = 11;

struct Config {
    fish: usize,
    steps: usize,
}

fn config(size: AppSize) -> Config {
    match size {
        AppSize::Tiny => Config { fish: 48, steps: 2 },
        AppSize::Small => Config {
            fish: 192,
            steps: 3,
        },
        AppSize::Full => Config {
            fish: 400,
            steps: 10,
        },
    }
}

const FISH_BYTES: u64 = 40; // x, y, vx, vy, mass

/// Runs Wator; returns this rank's checksum contribution.
pub async fn run(w: &World, size: AppSize) -> f64 {
    let cfg = config(size);
    let n = w.n();
    let me = w.me();
    let (start, my_count) = partition(cfg.fish, n, me);
    let max_count = partition(cfg.fish, n, 0).1;

    // Symmetric layout: fish array plus a snapshot area for remote reads.
    let fish = w.p.alloc(max_count as u64 * FISH_BYTES);
    let snap = w.p.alloc(cfg.fish as u64 * FISH_BYTES);
    {
        let mut rng = Lcg::new(23);
        let mut all = Vec::with_capacity(cfg.fish * 5);
        for _ in 0..cfg.fish {
            all.push(rng.next_f64() * 16.0);
            all.push(rng.next_f64() * 16.0);
            all.push(0.0);
            all.push(0.0);
            all.push(0.5 + rng.next_f64());
        }
        for (slot, i) in (start..start + my_count).enumerate() {
            w.p.write_f64_slice(fish.index(slot as u64 * 5, 8), &all[i * 5..i * 5 + 5]);
        }
    }
    w.coll.barrier().await;

    for step in 0..cfg.steps {
        // Read phase: GET every remote fish individually (the paper's
        // small-message signature), split-phase so GETs overlap.
        for r in 0..n {
            let (rs, rc) = partition(cfg.fish, n, r);
            if r == me {
                // Local copy into the snapshot.
                for j in 0..rc {
                    let rec = w.p.read_f64_slice(fish.index(j as u64 * 5, 8), 5);
                    w.p.write_f64_slice(snap.index((rs + j) as u64 * 5, 8), &rec);
                }
                w.work((rc as u64 * 4) * WORK_SCALE).await;
                continue;
            }
            for j in 0..rc {
                w.sc.get_nb(
                    GlobalPtr {
                        proc: ProcId(r as u32),
                        addr: fish.index(j as u64 * 5, 8),
                    },
                    snap.index((rs + j) as u64 * 5, 8),
                    FISH_BYTES as u32,
                )
                .await;
            }
        }
        w.sc.sync().await;
        // Force computation over the snapshot (real O(n²) gravity plus a
        // circular current).
        let all = w.p.read_f64_slice(snap, cfg.fish * 5);
        let mut upd = Vec::with_capacity(my_count * 5);
        for i in 0..my_count {
            let g = start + i;
            let (x, y, mut vx, mut vy, m) = (
                all[g * 5],
                all[g * 5 + 1],
                all[g * 5 + 2],
                all[g * 5 + 3],
                all[g * 5 + 4],
            );
            let (mut fx, mut fy) = (0.0, 0.0);
            for (j, other) in all.chunks_exact(5).enumerate() {
                if j == g {
                    continue;
                }
                let (dx, dy) = (other[0] - x, other[1] - y);
                let d2 = dx * dx + dy * dy + 0.05;
                let f = other[4] / (d2 * d2.sqrt());
                fx += dx * f;
                fy += dy * f;
            }
            // The current: a gentle rotation about the tank centre.
            fx += -0.05 * (y - 8.0);
            fy += 0.05 * (x - 8.0);
            vx += 0.01 * fx / m;
            vy += 0.01 * fy / m;
            upd.extend_from_slice(&[x + 0.01 * vx, y + 0.01 * vy, vx, vy, m]);
        }
        w.work(((my_count * cfg.fish) as u64 * 9) * WORK_SCALE)
            .await;
        // Nobody may rewrite fish until all GETs of this step completed.
        w.coll.barrier().await;
        for i in 0..my_count {
            w.p.write_f64_slice(fish.index(i as u64 * 5, 8), &upd[i * 5..i * 5 + 5]);
        }
        w.work((my_count as u64 * 5) * WORK_SCALE).await;
        w.coll.barrier().await;
        let _ = step;
    }
    let mut sum = 0.0;
    for i in 0..my_count {
        sum = fold_checksum(sum, w.p.read_f64(fish.index(i as u64 * 5, 8)));
        sum = fold_checksum(sum, w.p.read_f64(fish.index(i as u64 * 5 + 1, 8)));
    }
    sum
}
