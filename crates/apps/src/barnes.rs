//! Barnes-Hut: hierarchical n-body simulation (CRL, adapted from
//! SPLASH-2).
//!
//! The communication structure of a Barnes-Hut step is: read *detailed*
//! data for nearby bodies, read *summarised* data (tree cells) for distant
//! groups, then update your own bodies. We reproduce that shape with a
//! one-level hierarchy over **16 fixed spatial groups** (so the physics is
//! independent of the processor count): a body interacts in detail with
//! bodies of adjacent groups and through centre-of-mass summaries with the
//! rest. Group summaries and per-rank body arrays are CRL regions, cached
//! coherently and re-fetched after every step's writes — the coherence
//! traffic pattern (and the MP2 cache-update win) of the original. See
//! DESIGN.md for the substitution note.

use mproxy::ProcId;
use mproxy_crl::RegionId;

use crate::common::{fold_checksum, partition, AppSize, Lcg, World};

/// Compute-per-communication calibration: matches the per-processor
/// message rates of Table 6 at the Small problem size (see DESIGN.md on
/// the deterministic compute model).
const WORK_SCALE: u64 = 5;

/// Fixed spatial groups — the "tree cells" of the one-level hierarchy.
/// Processor counts must divide this (1, 2, 4, 8, 16 all do).
const GROUPS: usize = 16;

struct Config {
    bodies: usize,
    iters: usize,
}

fn config(size: AppSize) -> Config {
    match size {
        AppSize::Tiny => Config {
            bodies: 64,
            iters: 2,
        },
        AppSize::Small => Config {
            bodies: 256,
            iters: 3,
        },
        AppSize::Full => Config {
            bodies: 1024,
            iters: 4,
        },
    }
}

const BODY_F64S: usize = 4; // x, y, z, mass
const SUMMARY_F64S: usize = 4; // cx, cy, cz, total mass

/// Groups `g` and `h` interact in detail if adjacent on the ring.
fn near(g: usize, h: usize) -> bool {
    let d = (h + GROUPS - g) % GROUPS;
    d <= 1 || d == GROUPS - 1
}

/// Group index of global body `i`.
fn group_of(i: usize, bodies: usize) -> usize {
    (0..GROUPS)
        .find(|&h| {
            let (hs, hc) = partition(bodies, GROUPS, h);
            i >= hs && i < hs + hc
        })
        .expect("every body has a group")
}

/// Runs Barnes-Hut; returns this rank's checksum contribution.
#[allow(clippy::needless_range_loop)] // group/summary indices drive span math
pub async fn run(w: &World, size: AppSize) -> f64 {
    let cfg = config(size);
    let n = w.n();
    let me = w.me();
    assert_eq!(GROUPS % n, 0, "processor count must divide {GROUPS} groups");
    let gpr = GROUPS / n; // groups per rank
    let group_span = |g: usize| partition(cfg.bodies, GROUPS, g);
    let rank_span = |r: usize| {
        let start = group_span(r * gpr).0;
        let count: usize = (r * gpr..(r + 1) * gpr).map(|g| group_span(g).1).sum();
        (start, count)
    };
    let (start, my_count) = rank_span(me);
    let max_count = (0..n).map(|r| rank_span(r).1).max().expect("n > 0");
    let bodies_bytes = (max_count * BODY_F64S * 8) as u32;

    // Region 0 of each rank: its bodies; regions 1..=gpr: its group
    // summaries.
    let rid_bodies = w.crl.create(bodies_bytes);
    debug_assert_eq!(rid_bodies.idx, 0);
    for _ in 0..gpr {
        let _ = w.crl.create((SUMMARY_F64S * 8) as u32);
    }
    let bodies: Vec<_> = (0..n)
        .map(|r| {
            w.crl.map(
                RegionId {
                    home: ProcId(r as u32),
                    idx: 0,
                },
                bodies_bytes,
            )
        })
        .collect();
    let summaries: Vec<_> = (0..GROUPS)
        .map(|g| {
            w.crl.map(
                RegionId {
                    home: ProcId((g / gpr) as u32),
                    idx: (g % gpr) as u32 + 1,
                },
                (SUMMARY_F64S * 8) as u32,
            )
        })
        .collect();

    // Initial bodies (same global stream on every rank, sliced).
    let mut mine: Vec<f64> = {
        let mut rng = Lcg::new(17);
        let mut all = Vec::with_capacity(cfg.bodies * BODY_F64S);
        for _ in 0..cfg.bodies {
            all.push(rng.next_f64() * 32.0);
            all.push(rng.next_f64() * 32.0);
            all.push(rng.next_f64() * 32.0);
            all.push(0.5 + rng.next_f64());
        }
        all[start * BODY_F64S..(start + my_count) * BODY_F64S].to_vec()
    };
    let mut forces = vec![0.0f64; my_count * 3];

    for it in 0..cfg.iters + 1 {
        // --- write phase: publish updated bodies and group summaries ----
        w.crl.start_write(&bodies[me]).await;
        for (i, f) in forces.chunks_exact(3).enumerate() {
            for d in 0..3 {
                mine[i * BODY_F64S + d] += 0.0005 * f[d] / mine[i * BODY_F64S + 3];
            }
        }
        w.p.write_f64_slice(bodies[me].addr(), &mine);
        w.crl.end_write(&bodies[me]).await;
        for g in me * gpr..(me + 1) * gpr {
            let (gs, gc) = group_span(g);
            let local0 = (gs - start) * BODY_F64S;
            let (mut cx, mut cy, mut cz, mut m) = (0.0, 0.0, 0.0, 1e-12);
            for b in mine[local0..local0 + gc * BODY_F64S].chunks_exact(BODY_F64S) {
                cx += b[0] * b[3];
                cy += b[1] * b[3];
                cz += b[2] * b[3];
                m += b[3];
            }
            w.crl.start_write(&summaries[g]).await;
            w.p.write_f64_slice(summaries[g].addr(), &[cx / m, cy / m, cz / m, m]);
            w.crl.end_write(&summaries[g]).await;
        }
        w.work(my_count as u64 * 8 * WORK_SCALE).await;
        w.coll.barrier().await;
        if it == cfg.iters {
            break; // final positions published; no more force phase
        }

        // --- force phase: near groups in detail, far groups summarised --
        forces.iter_mut().for_each(|f| *f = 0.0);
        let mut interactions = 0u64;
        // Fetch what we need once per step: body arrays of owners of any
        // near group, summaries of everything (coherent cached reads).
        let mut rank_bodies: Vec<Option<Vec<f64>>> = vec![None; n];
        for h in 0..GROUPS {
            let owner = h / gpr;
            let detailed = (me * gpr..(me + 1) * gpr).any(|g| near(g, h));
            if detailed {
                if rank_bodies[owner].is_none() {
                    let data = if owner == me {
                        mine.clone()
                    } else {
                        let rc = rank_span(owner).1;
                        w.crl.start_read(&bodies[owner]).await;
                        let v = w.p.read_f64_slice(bodies[owner].addr(), rc * BODY_F64S);
                        w.crl.end_read(&bodies[owner]).await;
                        v
                    };
                    rank_bodies[owner] = Some(data);
                }
            } else {
                w.crl.start_read(&summaries[h]).await;
                w.crl.end_read(&summaries[h]).await;
            }
        }
        // Snapshot the summary values (reads above validated the copies).
        let mut summ = vec![0.0f64; GROUPS * SUMMARY_F64S];
        for h in 0..GROUPS {
            let v = w.p.read_f64_slice(summaries[h].addr(), SUMMARY_F64S);
            summ[h * SUMMARY_F64S..(h + 1) * SUMMARY_F64S].copy_from_slice(&v);
        }
        for i in 0..my_count {
            let g = group_of(start + i, cfg.bodies);
            let (xi, yi, zi) = (
                mine[i * BODY_F64S],
                mine[i * BODY_F64S + 1],
                mine[i * BODY_F64S + 2],
            );
            for h in 0..GROUPS {
                if near(g, h) {
                    let (hs, hc) = group_span(h);
                    let owner = h / gpr;
                    let data = rank_bodies[owner]
                        .as_ref()
                        .expect("near groups were fetched");
                    let owner_start = rank_span(owner).0;
                    for j in hs..hs + hc {
                        if start + i == j {
                            continue;
                        }
                        let b = (j - owner_start) * BODY_F64S;
                        let (dx, dy, dz) = (data[b] - xi, data[b + 1] - yi, data[b + 2] - zi);
                        let d2 = dx * dx + dy * dy + dz * dz + 0.1;
                        let f = data[b + 3] / (d2 * d2.sqrt());
                        forces[i * 3] += dx * f;
                        forces[i * 3 + 1] += dy * f;
                        forces[i * 3 + 2] += dz * f;
                        interactions += 1;
                    }
                } else {
                    let s = &summ[h * SUMMARY_F64S..(h + 1) * SUMMARY_F64S];
                    let (dx, dy, dz) = (s[0] - xi, s[1] - yi, s[2] - zi);
                    let d2 = dx * dx + dy * dy + dz * dz + 0.1;
                    let f = s[3] / (d2 * d2.sqrt());
                    forces[i * 3] += dx * f;
                    forces[i * 3 + 1] += dy * f;
                    forces[i * 3 + 2] += dz * f;
                    interactions += 1;
                }
            }
        }
        w.work(interactions * 11 * WORK_SCALE).await;
        w.coll.barrier().await;
    }

    let mut sum = 0.0;
    for b in mine.chunks_exact(BODY_F64S) {
        sum = fold_checksum(sum, b[0] + b[1] + b[2]);
    }
    sum
}
