//! P-Ray: a parallel ray tracer (Split-C).
//!
//! "P-Ray is largely unaffected by the choice of design points due to
//! small and infrequent messages" — the scene's spheres are distributed
//! round-robin and fetched once (small bulk gets); rendering is pure
//! computation with only light progress reporting back to rank 0.

use mproxy::ProcId;
use mproxy_splitc::GlobalPtr;

use crate::common::{fold_checksum, partition, AppSize, Lcg, World};

/// Compute-per-communication calibration: matches the per-processor
/// message rates of Table 6 at the Small problem size (see DESIGN.md on
/// the deterministic compute model).
const WORK_SCALE: u64 = 80;

struct Config {
    width: usize,
    height: usize,
    spheres: usize,
}

fn config(size: AppSize) -> Config {
    match size {
        AppSize::Tiny => Config {
            width: 24,
            height: 24,
            spheres: 8,
        },
        AppSize::Small => Config {
            width: 64,
            height: 64,
            spheres: 8,
        },
        AppSize::Full => Config {
            width: 512,
            height: 512,
            spheres: 8,
        },
    }
}

const SPHERE_F64S: usize = 8; // cx, cy, cz, radius, r, g, b, shininess

fn make_sphere(rng: &mut Lcg) -> [f64; SPHERE_F64S] {
    [
        rng.next_f64() * 8.0 - 4.0,
        rng.next_f64() * 8.0 - 4.0,
        6.0 + rng.next_f64() * 6.0,
        0.5 + rng.next_f64() * 1.5,
        rng.next_f64(),
        rng.next_f64(),
        rng.next_f64(),
        1.0 + rng.next_f64() * 4.0,
    ]
}

/// Ray/sphere intersection: returns the nearest positive t, if any.
fn intersect(ox: f64, oy: f64, oz: f64, dx: f64, dy: f64, dz: f64, s: &[f64]) -> Option<f64> {
    let (lx, ly, lz) = (s[0] - ox, s[1] - oy, s[2] - oz);
    let tca = lx * dx + ly * dy + lz * dz;
    let d2 = lx * lx + ly * ly + lz * lz - tca * tca;
    let r2 = s[3] * s[3];
    if d2 > r2 {
        return None;
    }
    let thc = (r2 - d2).sqrt();
    let t = tca - thc;
    (t > 1e-6).then_some(t)
}

/// Runs P-Ray; returns this rank's checksum contribution.
pub async fn run(w: &World, size: AppSize) -> f64 {
    let cfg = config(size);
    let n = w.n();
    let me = w.me();

    // Scene distribution: sphere i lives at rank i % n; symmetric layout.
    let per_rank = cfg.spheres.div_ceil(n);
    let scene = w.p.alloc((per_rank * SPHERE_F64S * 8) as u64);
    {
        let mut rng = Lcg::new(31);
        for i in 0..cfg.spheres {
            let s = make_sphere(&mut rng);
            if i % n == me {
                w.p.write_f64_slice(scene.index((i / n * SPHERE_F64S) as u64, 8), &s);
            }
        }
    }
    let progress = w.p.alloc(8 * n as u64); // rank 0's progress board
    w.coll.barrier().await;

    // Fetch the full scene (small, infrequent bulk gets).
    let mut spheres: Vec<[f64; SPHERE_F64S]> = Vec::with_capacity(cfg.spheres);
    let scratch = w.p.alloc((SPHERE_F64S * 8) as u64);
    for i in 0..cfg.spheres {
        let owner = i % n;
        let slot = scene.index((i / n * SPHERE_F64S) as u64, 8);
        if owner == me {
            spheres.push(
                w.p.read_f64_slice(slot, SPHERE_F64S)
                    .try_into()
                    .expect("8 floats"),
            );
        } else {
            w.sc.bulk_get(
                GlobalPtr {
                    proc: ProcId(owner as u32),
                    addr: slot,
                },
                scratch,
                (SPHERE_F64S * 8) as u32,
            )
            .await;
            spheres.push(
                w.p.read_f64_slice(scratch, SPHERE_F64S)
                    .try_into()
                    .expect("8 floats"),
            );
        }
    }

    // Render our rows.
    let (row0, rows) = partition(cfg.height, n, me);
    let mut sum = 0.0;
    let my_progress = w.p.alloc(8);
    for (done, y) in (row0..row0 + rows).enumerate() {
        for x in 0..cfg.width {
            // Camera ray through the pixel.
            let dx = (x as f64 + 0.5) / cfg.width as f64 - 0.5;
            let dy = (y as f64 + 0.5) / cfg.height as f64 - 0.5;
            let len = (dx * dx + dy * dy + 1.0).sqrt();
            let (dx, dy, dz) = (dx / len, dy / len, 1.0 / len);
            let mut best: Option<(f64, usize)> = None;
            for (i, s) in spheres.iter().enumerate() {
                if let Some(t) = intersect(0.0, 0.0, 0.0, dx, dy, dz, s) {
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, i));
                    }
                }
            }
            let lum = match best {
                Some((t, i)) => {
                    let s = &spheres[i];
                    // Diffuse shade from a fixed light.
                    let (px, py, pz) = (t * dx, t * dy, t * dz);
                    let (nx, ny, nz) = ((px - s[0]) / s[3], (py - s[1]) / s[3], (pz - s[2]) / s[3]);
                    let ndotl = (-0.5 * nx - 0.5 * ny - 0.7 * nz).max(0.0);
                    (s[4] + s[5] + s[6]) / 3.0 * (0.1 + 0.9 * ndotl)
                }
                None => 0.02, // background
            };
            sum = fold_checksum(sum, lum);
        }
        w.work(((cfg.width * (16 + 6 * cfg.spheres)) as u64) * WORK_SCALE)
            .await;
        // Light progress reporting every 8 rows (small infrequent puts).
        if done % 8 == 7 && me != 0 {
            w.p.write_u64(my_progress, done as u64 + 1);
            w.sc.store(
                my_progress,
                GlobalPtr {
                    proc: ProcId(0),
                    addr: progress.index(me as u64, 8),
                },
                8,
            )
            .await;
        }
    }
    w.sc.all_store_sync(&w.coll).await;
    sum
}
