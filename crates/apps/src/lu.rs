//! LU: blocked LU factorization of a dense matrix (CRL).
//!
//! The matrix is a `g×g` grid of `b×b` blocks, each a CRL region homed at
//! its (cyclically assigned) owner — the paper's configuration makes each
//! block 800 bytes (10×10 doubles). "A significant fraction of the message
//! traffic is coherence protocol traffic with small message sizes." The
//! factorization is right-looking without pivoting on a diagonally
//! dominant matrix; kernels are real and the result is validated against
//! a sequential oracle in the tests.

use mproxy::ProcId;
use mproxy_crl::{Region, RegionId};

use crate::common::{fold_checksum, AppSize, World};

/// Compute-per-communication calibration: matches the per-processor
/// message rates of Table 6 at the Small problem size (see DESIGN.md on
/// the deterministic compute model).
const WORK_SCALE: u64 = 8;

struct Config {
    n: usize,
    b: usize,
}

fn config(size: AppSize) -> Config {
    match size {
        AppSize::Tiny => Config { n: 32, b: 8 },
        AppSize::Small => Config { n: 96, b: 8 },
        AppSize::Full => Config { n: 200, b: 10 },
    }
}

/// Deterministic, diagonally dominant matrix entry.
pub(crate) fn matrix_entry(i: usize, j: usize, n: usize) -> f64 {
    let base = 1.0 / (1.0 + i.abs_diff(j) as f64);
    if i == j {
        base + 2.0 * n as f64
    } else {
        base
    }
}

/// Sequential blocked-free LU (no pivoting) for validation; returns the
/// in-place factors.
#[cfg(test)]
pub(crate) fn sequential_lu(n: usize) -> Vec<f64> {
    let mut a: Vec<f64> = (0..n * n).map(|x| matrix_entry(x / n, x % n, n)).collect();
    for k in 0..n {
        for r in k + 1..n {
            a[r * n + k] /= a[k * n + k];
            let l = a[r * n + k];
            for c in k + 1..n {
                a[r * n + c] -= l * a[k * n + c];
            }
        }
    }
    a
}

fn owner(bi: usize, bj: usize, g: usize, nprocs: usize) -> usize {
    (bi * g + bj) % nprocs
}

/// Per-home region index of block (bi, bj): how many earlier blocks (in
/// scan order) share its owner.
fn region_idx(bi: usize, bj: usize, g: usize, nprocs: usize) -> u32 {
    let lin = bi * g + bj;
    (lin / nprocs) as u32
}

/// Runs LU; returns this rank's checksum contribution (sum over the U
/// diagonal of blocks this rank owns).
pub async fn run(w: &World, size: AppSize) -> f64 {
    let cfg = config(size);
    run_inner(w, cfg.n, cfg.b).await
}

#[allow(clippy::needless_range_loop)] // 2-D block indices drive ownership math
pub(crate) async fn run_inner(w: &World, n: usize, b: usize) -> f64 {
    assert_eq!(n % b, 0, "block size must divide the matrix");
    let g = n / b;
    let nprocs = w.n();
    let me = w.me();
    let block_bytes = (b * b * 8) as u32;

    // Create own blocks in scan order (fixes per-home indices), then map
    // everything.
    for bi in 0..g {
        for bj in 0..g {
            if owner(bi, bj, g, nprocs) == me {
                let rid = w.crl.create(block_bytes);
                debug_assert_eq!(rid.idx, region_idx(bi, bj, g, nprocs));
            }
        }
    }
    let blocks: Vec<Vec<Region>> = (0..g)
        .map(|bi| {
            (0..g)
                .map(|bj| {
                    w.crl.map(
                        RegionId {
                            home: ProcId(owner(bi, bj, g, nprocs) as u32),
                            idx: region_idx(bi, bj, g, nprocs),
                        },
                        block_bytes,
                    )
                })
                .collect()
        })
        .collect();

    // Owners initialise the master copies directly (no copies exist yet).
    for bi in 0..g {
        for bj in 0..g {
            if owner(bi, bj, g, nprocs) != me {
                continue;
            }
            let mut buf = Vec::with_capacity(b * b);
            for r in 0..b {
                for c in 0..b {
                    buf.push(matrix_entry(bi * b + r, bj * b + c, n));
                }
            }
            w.p.write_f64_slice(blocks[bi][bj].addr(), &buf);
        }
    }
    w.coll.barrier().await;

    let read_block = |rgn: &Region| w.p.read_f64_slice(rgn.addr(), b * b);

    for k in 0..g {
        // --- factor the diagonal block ---------------------------------
        if owner(k, k, g, nprocs) == me {
            let rgn = &blocks[k][k];
            w.crl.start_write(rgn).await;
            let mut a = read_block(rgn);
            for kk in 0..b {
                for r in kk + 1..b {
                    a[r * b + kk] /= a[kk * b + kk];
                    let l = a[r * b + kk];
                    for c in kk + 1..b {
                        a[r * b + c] -= l * a[kk * b + c];
                    }
                }
            }
            w.p.write_f64_slice(rgn.addr(), &a);
            w.crl.end_write(rgn).await;
            w.work(((b * b * b) as u64 * 2 / 3) * WORK_SCALE).await;
        }
        w.coll.barrier().await;

        // --- panel updates ---------------------------------------------
        // Column: A(i,k) <- A(i,k) · U(k,k)^-1 ; Row: A(k,j) <- L(k,k)^-1 · A(k,j).
        let mut diag: Option<Vec<f64>> = None;
        let mut need_diag = false;
        for t in k + 1..g {
            need_diag |= owner(t, k, g, nprocs) == me || owner(k, t, g, nprocs) == me;
        }
        if need_diag {
            let rgn = &blocks[k][k];
            w.crl.start_read(rgn).await;
            diag = Some(read_block(rgn));
            w.crl.end_read(rgn).await;
        }
        for i in k + 1..g {
            if owner(i, k, g, nprocs) == me {
                let d = diag.as_ref().expect("diag fetched");
                let rgn = &blocks[i][k];
                w.crl.start_write(rgn).await;
                let mut a = read_block(rgn);
                // Solve X · U = A (U upper triangular with diagonal).
                for r in 0..b {
                    for c in 0..b {
                        let mut acc = a[r * b + c];
                        for t in 0..c {
                            acc -= a[r * b + t] * d[t * b + c];
                        }
                        a[r * b + c] = acc / d[c * b + c];
                    }
                }
                w.p.write_f64_slice(rgn.addr(), &a);
                w.crl.end_write(rgn).await;
                w.work(((b * b * b) as u64) * WORK_SCALE).await;
            }
            if owner(k, i, g, nprocs) == me {
                let d = diag.as_ref().expect("diag fetched");
                let rgn = &blocks[k][i];
                w.crl.start_write(rgn).await;
                let mut a = read_block(rgn);
                // Solve L · X = A (L unit lower triangular).
                for c in 0..b {
                    for r in 0..b {
                        let mut acc = a[r * b + c];
                        for t in 0..r {
                            acc -= d[r * b + t] * a[t * b + c];
                        }
                        a[r * b + c] = acc;
                    }
                }
                w.p.write_f64_slice(rgn.addr(), &a);
                w.crl.end_write(rgn).await;
                w.work(((b * b * b) as u64) * WORK_SCALE).await;
            }
        }
        w.coll.barrier().await;

        // --- trailing update --------------------------------------------
        for i in k + 1..g {
            // Fetch L(i,k) once per row we participate in.
            let mut l_ik: Option<Vec<f64>> = None;
            for j in k + 1..g {
                if owner(i, j, g, nprocs) != me {
                    continue;
                }
                if l_ik.is_none() {
                    let rgn = &blocks[i][k];
                    w.crl.start_read(rgn).await;
                    l_ik = Some(read_block(rgn));
                    w.crl.end_read(rgn).await;
                }
                let u_kj = {
                    let rgn = &blocks[k][j];
                    w.crl.start_read(rgn).await;
                    let v = read_block(rgn);
                    w.crl.end_read(rgn).await;
                    v
                };
                let l = l_ik.as_ref().expect("fetched above");
                let rgn = &blocks[i][j];
                w.crl.start_write(rgn).await;
                let mut a = read_block(rgn);
                for r in 0..b {
                    for t in 0..b {
                        let lv = l[r * b + t];
                        for c in 0..b {
                            a[r * b + c] -= lv * u_kj[t * b + c];
                        }
                    }
                }
                w.p.write_f64_slice(rgn.addr(), &a);
                w.crl.end_write(rgn).await;
                w.work(((b * b * b) as u64 * 2) * WORK_SCALE).await;
            }
        }
        w.coll.barrier().await;
    }

    // Checksum: U's diagonal from the blocks we own.
    let mut sum = 0.0;
    for bk in 0..g {
        if owner(bk, bk, g, nprocs) == me {
            let rgn = &blocks[bk][bk];
            w.crl.start_read(rgn).await;
            let a = read_block(rgn);
            w.crl.end_read(rgn).await;
            for r in 0..b {
                sum = fold_checksum(sum, a[r * b + r]);
            }
        }
    }
    w.coll.barrier().await;
    sum
}
