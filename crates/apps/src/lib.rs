//! # mproxy-apps — the paper's application suite (Table 5)
//!
//! Ten parallel applications in three programming styles, reimplemented as
//! real (scaled) algorithms running execution-driven on the simulated
//! cluster:
//!
//! | app | style | communication signature |
//! |---|---|---|
//! | Moldy     | native RMA | broadcast of concatenated vectors (large PUTs) |
//! | LU        | CRL        | blocked LU, coherence traffic on 800-byte blocks |
//! | Barnes-Hut| CRL        | hierarchical n-body, cached reads + per-step updates |
//! | Water     | CRL        | n² molecular dynamics, read-mostly sharing |
//! | MM        | Split-C    | blocked matmul, bulk block fetches |
//! | FFT       | Split-C    | bulk all-to-all transpose |
//! | Sample    | Split-C/AM | per-key `am_request` exchange (two doubles per message) |
//! | Sampleb   | Split-C    | sample sort with bulk transfers |
//! | P-Ray     | Split-C    | ray tracer, small infrequent reads |
//! | Wator     | Split-C    | fish n-body, frequent small GETs |
//!
//! Every app returns a checksum that is identical across design points
//! (the architecture changes *when* things happen, never *what* is
//! computed) — the suite doubles as an end-to-end correctness test of the
//! whole communication stack.
//!
//! # Examples
//!
//! ```
//! use mproxy_apps::{run_app, AppId, AppSize};
//! use mproxy_model::{HW1, MP1};
//!
//! let hw = run_app(AppId::Sample, HW1, 4, 1, AppSize::Tiny);
//! let mp = run_app(AppId::Sample, MP1, 4, 1, AppSize::Tiny);
//! assert_eq!(hw.checksum, mp.checksum); // same answer...
//! assert!(mp.elapsed_us > hw.elapsed_us); // ...different time
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;

mod barnes;
mod fft;
mod lu;
mod mm;
mod moldy;
mod pray;
mod sample;
mod water;
mod wator;

use std::cell::RefCell;
use std::rc::Rc;

use mproxy::{Cluster, ClusterSpec, FaultPlan, FaultReport, TrafficReport};
use mproxy_des::{RunReport, Simulation};
use mproxy_model::DesignPoint;

pub use common::{AppSize, World};

/// The ten applications of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppId {
    /// Monte-Carlo molecular dynamics (native RMA).
    Moldy,
    /// Blocked LU factorization (CRL).
    Lu,
    /// Hierarchical n-body (CRL).
    Barnes,
    /// n² molecular dynamics (CRL).
    Water,
    /// Blocked matrix multiplication (Split-C).
    Mm,
    /// 1-D FFT with bulk transpose (Split-C).
    Fft,
    /// Sample sort with per-key active messages (Split-C).
    Sample,
    /// Sample sort with bulk transfers (Split-C).
    Sampleb,
    /// Ray tracer (Split-C).
    PRay,
    /// Fish n-body simulation (Split-C).
    Wator,
}

impl AppId {
    /// All ten, in the paper's listing order.
    pub const ALL: [AppId; 10] = [
        AppId::Moldy,
        AppId::Lu,
        AppId::Barnes,
        AppId::Water,
        AppId::Mm,
        AppId::Fft,
        AppId::Sample,
        AppId::Sampleb,
        AppId::PRay,
        AppId::Wator,
    ];

    /// Display name as used in the paper.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AppId::Moldy => "Moldy",
            AppId::Lu => "LU",
            AppId::Barnes => "Barnes-Hut",
            AppId::Water => "Water",
            AppId::Mm => "MM",
            AppId::Fft => "FFT",
            AppId::Sample => "Sample",
            AppId::Sampleb => "Sampleb",
            AppId::PRay => "P-Ray",
            AppId::Wator => "Wator",
        }
    }

    /// Programming style (Table 5 grouping).
    #[must_use]
    pub fn style(&self) -> &'static str {
        match self {
            AppId::Moldy => "native RMA",
            AppId::Lu | AppId::Barnes | AppId::Water => "CRL",
            _ => "Split-C",
        }
    }

    /// Looks an app up by (case-insensitive) name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<AppId> {
        AppId::ALL
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(name))
    }
}

/// Result of one application run.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Simulated execution time of the timed section, µs.
    pub elapsed_us: f64,
    /// Design-point-independent checksum of the computed answer.
    pub checksum: f64,
    /// Cluster-wide traffic statistics (Table 6 inputs).
    pub traffic: TrafficReport,
    /// Injected faults and link-layer recovery counters (all-zero for
    /// runs without a fault plan).
    pub faults: FaultReport,
    /// The simulator's own run report — event and task counts, used by
    /// the performance harness to compute events/sec.
    pub sim: RunReport,
}

/// Runs `app` on a `nodes`×`procs_per_node` cluster at `design`,
/// returning timing, checksum and traffic.
///
/// # Panics
///
/// Panics if the cluster spec is invalid or the run deadlocks.
#[must_use]
pub fn run_app(
    app: AppId,
    design: DesignPoint,
    nodes: usize,
    procs_per_node: usize,
    size: AppSize,
) -> AppRun {
    run_app_inner(app, design, nodes, procs_per_node, size, None)
}

/// Like [`run_app`], but on a faulty network described by `plan`. The
/// reliable link layer must make the run produce the same checksum as a
/// fault-free one — only the timing (and the fault report) may differ.
///
/// # Panics
///
/// As for [`run_app`].
#[must_use]
pub fn run_app_faulty(
    app: AppId,
    design: DesignPoint,
    nodes: usize,
    procs_per_node: usize,
    size: AppSize,
    plan: FaultPlan,
) -> AppRun {
    run_app_inner(app, design, nodes, procs_per_node, size, Some(plan))
}

fn run_app_inner(
    app: AppId,
    design: DesignPoint,
    nodes: usize,
    procs_per_node: usize,
    size: AppSize,
    plan: Option<FaultPlan>,
) -> AppRun {
    let sim = Simulation::new();
    let spec = ClusterSpec::new(design, nodes, procs_per_node);
    let cluster = match plan {
        Some(plan) => Cluster::new_with_faults(&sim.ctx(), spec, plan),
        None => Cluster::new(&sim.ctx(), spec),
    }
    .unwrap_or_else(|e| panic!("bad cluster spec: {e}"));
    let out: Rc<RefCell<(f64, f64)>> = Rc::new(RefCell::new((0.0, 0.0)));
    let probe = Rc::clone(&out);
    cluster.spawn_spmd(move |p| {
        let probe = Rc::clone(&probe);
        async move {
            let w = World::new(&p);
            // Everyone finishes construction before anyone communicates.
            w.p.ctx().yield_now().await;
            w.coll.barrier().await;
            let t0 = w.p.now();
            let local = match app {
                AppId::Moldy => moldy::run(&w, size).await,
                AppId::Lu => lu::run(&w, size).await,
                AppId::Barnes => barnes::run(&w, size).await,
                AppId::Water => water::run(&w, size).await,
                AppId::Mm => mm::run(&w, size).await,
                AppId::Fft => fft::run(&w, size).await,
                AppId::Sample => sample::run(&w, size, false).await,
                AppId::Sampleb => sample::run(&w, size, true).await,
                AppId::PRay => pray::run(&w, size).await,
                AppId::Wator => wator::run(&w, size).await,
            };
            let sum = w.coll.allreduce_sum(local).await;
            w.coll.barrier().await;
            if w.me() == 0 {
                let elapsed = w.p.now().since(t0).as_us();
                *probe.borrow_mut() = (elapsed, sum);
            }
        }
    });
    let report = cluster.run(&sim);
    assert!(
        report.completed_cleanly(),
        "{} deadlocked on {} ({} tasks pending)",
        app.name(),
        design.name,
        report.pending
    );
    let traffic = cluster.traffic_report();
    let (elapsed_us, checksum) = *out.borrow();
    AppRun {
        elapsed_us,
        checksum,
        traffic,
        faults: cluster.fault_report(),
        sim: report,
    }
}

/// Convenience: run on `procs` single-compute-processor nodes (the Figure
/// 8 configuration).
#[must_use]
pub fn run_app_flat(app: AppId, design: DesignPoint, procs: usize, size: AppSize) -> AppRun {
    run_app(app, design, procs, 1, size)
}

/// Convenience: [`run_app_faulty`] on `procs` single-compute-processor
/// nodes.
#[must_use]
pub fn run_app_flat_faulty(
    app: AppId,
    design: DesignPoint,
    procs: usize,
    size: AppSize,
    plan: FaultPlan,
) -> AppRun {
    run_app_faulty(app, design, procs, 1, size, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mproxy_model::{HW1, MP1, MP2, SW1};

    #[test]
    fn all_apps_run_and_agree_across_design_points() {
        // The architecture must change timing, never answers.
        for app in AppId::ALL {
            let base = run_app_flat(app, HW1, 2, AppSize::Tiny);
            assert!(base.elapsed_us > 0.0, "{} ran in zero time", app.name());
            assert!(
                base.traffic.total_ops > 0,
                "{} never communicated",
                app.name()
            );
            for d in [MP1, SW1] {
                let other = run_app_flat(app, d, 2, AppSize::Tiny);
                assert_eq!(
                    other.checksum,
                    base.checksum,
                    "{} answer differs between HW1 and {}",
                    app.name(),
                    d.name
                );
            }
        }
    }

    #[test]
    fn checksums_stable_across_processor_counts() {
        // Partitioning must not change results (phase-barriered apps).
        for app in AppId::ALL {
            let p2 = run_app_flat(app, MP1, 2, AppSize::Tiny);
            let p4 = run_app_flat(app, MP1, 4, AppSize::Tiny);
            // Barnes-Hut's near/far force split follows the rank topology
            // (like tree-opening granularity), so its *approximation* is
            // allowed to drift slightly with P; everything else is exact.
            let rel = if app == AppId::Barnes { 1e-5 } else { 1e-9 };
            let tol = (p2.checksum.abs() * rel).max(1e-6);
            assert!(
                (p2.checksum - p4.checksum).abs() <= tol,
                "{}: P=2 gives {}, P=4 gives {}",
                app.name(),
                p2.checksum,
                p4.checksum
            );
        }
    }

    #[test]
    fn mm_matches_sequential_reference() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let n = 32;
        let b = 8;
        let sim = mproxy_des::Simulation::new();
        let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(MP1, 2, 1)).unwrap();
        let sink = Rc::new(RefCell::new(Vec::new()));
        let probe = Rc::clone(&sink);
        cluster.spawn_spmd(move |p| {
            let probe = Rc::clone(&probe);
            async move {
                let w = World::new(&p);
                w.p.ctx().yield_now().await;
                w.coll.barrier().await;
                let _ = mm::run_inner(&w, n, b, Some(probe)).await;
                w.coll.barrier().await;
            }
        });
        assert!(cluster.run(&sim).completed_cleanly());
        let expect = mm::reference(n);
        let blocks = sink.borrow();
        assert_eq!(blocks.len(), (n / b) * (n / b));
        for (bi, bj, acc) in blocks.iter() {
            for r in 0..b {
                for c in 0..b {
                    let want = expect[(bi * b + r) * n + (bj * b + c)];
                    let got = acc[r * b + c];
                    assert!(
                        (want - got).abs() < 1e-9,
                        "C[{},{}] block ({bi},{bj}): {got} vs {want}",
                        bi * b + r,
                        bj * b + c
                    );
                }
            }
        }
    }

    #[test]
    fn lu_matches_sequential_oracle() {
        use std::cell::RefCell;
        use std::rc::Rc;
        // Distributed U diagonal must match a plain sequential LU.
        let n = 32;
        let seq = lu::sequential_lu(n);
        let want: f64 = (0..n)
            .map(|i| (seq[i * n + i] * 1024.0).round() / 1024.0)
            .sum();
        let sim = mproxy_des::Simulation::new();
        let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(MP1, 4, 1)).unwrap();
        let got = Rc::new(RefCell::new(0.0));
        let probe = Rc::clone(&got);
        cluster.spawn_spmd(move |p| {
            let probe = Rc::clone(&probe);
            async move {
                let w = World::new(&p);
                w.p.ctx().yield_now().await;
                w.coll.barrier().await;
                let local = lu::run_inner(&w, 32, 8).await;
                let sum = w.coll.allreduce_sum(local).await;
                w.coll.barrier().await;
                if w.me() == 0 {
                    *probe.borrow_mut() = sum;
                }
            }
        });
        assert!(cluster.run(&sim).completed_cleanly());
        let got = *got.borrow();
        assert!(
            (got - want).abs() < 1e-6,
            "U diagonal: distributed {got} vs sequential {want}"
        );
    }

    #[test]
    fn fft_distributed_matches_direct_dft() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let side = 8; // n = 64
        let total = side * side;
        let sim = mproxy_des::Simulation::new();
        let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(MP1, 2, 1)).unwrap();
        let sink = Rc::new(RefCell::new(Vec::new()));
        let probe = Rc::clone(&sink);
        cluster.spawn_spmd(move |p| {
            let probe = Rc::clone(&probe);
            async move {
                let w = World::new(&p);
                w.p.ctx().yield_now().await;
                w.coll.barrier().await;
                let _ = fft::run_inner(&w, side, Some(probe)).await;
                w.coll.barrier().await;
            }
        });
        assert!(cluster.run(&sim).completed_cleanly());
        // Direct DFT of the same input.
        let input: Vec<(f64, f64)> = (0..total).map(|j| fft::input_sample(j, total)).collect();
        let mut expect = vec![(0.0, 0.0); total];
        for (k, e) in expect.iter_mut().enumerate() {
            for (j, &(re, im)) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * ((j * k) % total) as f64 / total as f64;
                let (c, s) = (ang.cos(), ang.sin());
                e.0 += re * c - im * s;
                e.1 += re * s + im * c;
            }
        }
        // Local element (r, c) of stripe starting at row0 holds X[c*side + row0 + r].
        for (row0, local) in sink.borrow().iter() {
            let lr = local.len() / (side * 2);
            for r in 0..lr {
                for c in 0..side {
                    let k = c * side + row0 + r;
                    let got = (local[(r * side + c) * 2], local[(r * side + c) * 2 + 1]);
                    assert!(
                        (got.0 - expect[k].0).abs() < 1e-6 && (got.1 - expect[k].1).abs() < 1e-6,
                        "X[{k}]: got {got:?}, want {:?}",
                        expect[k]
                    );
                }
            }
        }
    }

    #[test]
    fn apps_speed_up_with_more_processors() {
        // Communication-light apps must show real speedup from 1 to 4.
        for app in [AppId::PRay, AppId::Mm] {
            let t1 = run_app_flat(app, HW1, 1, AppSize::Tiny).elapsed_us;
            let t4 = run_app_flat(app, HW1, 4, AppSize::Tiny).elapsed_us;
            assert!(
                t1 / t4 > 1.5,
                "{}: T1={t1:.0}us T4={t4:.0}us speedup {:.2}",
                app.name(),
                t1 / t4
            );
        }
    }

    #[test]
    fn cache_update_helps_communication_intensive_apps() {
        // MP2 must beat MP1 on Sample/Wator (the 7-25% of the abstract).
        for app in [AppId::Sample, AppId::Wator] {
            let mp1 = run_app_flat(app, MP1, 4, AppSize::Tiny).elapsed_us;
            let mp2 = run_app_flat(app, MP2, 4, AppSize::Tiny).elapsed_us;
            assert!(
                mp2 < mp1,
                "{}: MP2 ({mp2:.0}us) should beat MP1 ({mp1:.0}us)",
                app.name()
            );
        }
    }

    #[test]
    fn design_point_ordering_on_latency_bound_app() {
        // HW1 <= MP2 <= MP1 on a small-message app.
        let hw = run_app_flat(AppId::Wator, HW1, 4, AppSize::Tiny).elapsed_us;
        let mp2 = run_app_flat(AppId::Wator, MP2, 4, AppSize::Tiny).elapsed_us;
        let mp1 = run_app_flat(AppId::Wator, MP1, 4, AppSize::Tiny).elapsed_us;
        assert!(
            hw <= mp2 && mp2 <= mp1,
            "hw={hw:.0} mp2={mp2:.0} mp1={mp1:.0}"
        );
    }

    #[test]
    fn traffic_report_reflects_message_sizes() {
        // Moldy sends big messages; Wator sends 40-byte ones.
        let moldy = run_app_flat(AppId::Moldy, MP1, 4, AppSize::Tiny).traffic;
        let wator = run_app_flat(AppId::Wator, MP1, 4, AppSize::Tiny).traffic;
        assert!(
            moldy.avg_msg_bytes > 3.0 * wator.avg_msg_bytes,
            "moldy {:.0}B vs wator {:.0}B",
            moldy.avg_msg_bytes,
            wator.avg_msg_bytes
        );
    }

    #[test]
    fn faulty_network_changes_timing_never_answers() {
        let clean = run_app_flat(AppId::Sample, MP1, 2, AppSize::Tiny);
        let plan = FaultPlan::new(99)
            .drop(0.02)
            .duplicate(0.01)
            .reorder(0.02, 25.0);
        let faulty = run_app_flat_faulty(AppId::Sample, MP1, 2, AppSize::Tiny, plan);
        assert_eq!(clean.checksum, faulty.checksum);
        assert!(faulty.faults.injected.packets > 0);
        assert_eq!(faulty.faults.link.unreachable, 0);
        assert!(faulty.elapsed_us >= clean.elapsed_us);
    }

    #[test]
    fn app_lookup_by_name() {
        assert_eq!(AppId::by_name("lu"), Some(AppId::Lu));
        assert_eq!(AppId::by_name("P-RAY"), Some(AppId::PRay));
        assert_eq!(AppId::by_name("nope"), None);
        assert_eq!(AppId::Lu.style(), "CRL");
        assert_eq!(AppId::Wator.style(), "Split-C");
    }

    #[test]
    fn smp_nodes_with_multiple_compute_procs() {
        // The Figure 9 configuration must run correctly too.
        let flat = run_app(AppId::Sample, MP1, 4, 1, AppSize::Tiny);
        let smp = run_app(AppId::Sample, MP1, 2, 2, AppSize::Tiny);
        assert_eq!(flat.checksum, smp.checksum);
    }
}
