//! Sample and Sampleb: parallel sample sort (Split-C).
//!
//! Two variants sharing setup, as in the paper:
//!
//! * **Sample** "uses am_request messages to send two double floating
//!   point numbers in each message when exchanging data in its main
//!   communication phase" — with Wator the most communication-intensive
//!   program (small messages, high rate).
//! * **Sampleb** "uses bulk transfers": keys are sorted locally, split
//!   into contiguous bucket runs, and moved with bulk puts.
//!
//! Both verify their output: each rank asserts local sortedness and the
//! bucket boundary invariant against its neighbour.

use std::cell::RefCell;
use std::rc::Rc;

use mproxy::ProcId;
use mproxy_splitc::GlobalPtr;

use crate::common::{fold_checksum, AppSize, Lcg, World};

/// Compute-per-communication calibration: matches the per-processor
/// message rates of Table 6 at the Small problem size (see DESIGN.md on
/// the deterministic compute model).
const WORK_SCALE: u64 = 14;

fn total_keys(size: AppSize) -> usize {
    match size {
        AppSize::Tiny => 512,
        AppSize::Small => 8192,
        AppSize::Full => 262_144,
    }
}

/// Key at global index `i` — independent of the partitioning.
fn key_at(i: usize) -> f64 {
    Lcg::new(0x5eed_0000 + i as u64).next_f64()
}

const SAMPLES_PER_PROC: usize = 8;

/// Runs Sample (`bulk = false`) or Sampleb (`bulk = true`); returns this
/// rank's checksum contribution.
#[allow(clippy::needless_range_loop)] // bucket index pairs with splitter and run
pub async fn run(w: &World, size: AppSize, bulk: bool) -> f64 {
    let n = w.n();
    let me = w.me();
    let (key0, kpp) = crate::common::partition(total_keys(size), n, me);

    // All communication areas and handlers are set up before the first
    // exchange, then published by a barrier: a peer may reach its sends
    // while we are still computing, and must find our memory and handler
    // table ready.
    let sample_area = w.p.alloc((n * SAMPLES_PER_PROC * 8) as u64);
    let splitters_area = w.p.alloc(((n - 1).max(1) * 8) as u64);
    let my_samples = w.p.alloc((SAMPLES_PER_PROC * 8) as u64);
    let cap = (3 * kpp / n + 32) * 8;
    let recv_area = w.p.alloc((n * cap) as u64);
    let counts_area = w.p.alloc((n * 8) as u64);
    let send_buf = w.p.alloc((kpp * 8) as u64);
    let counts_out = w.p.alloc((n * 8) as u64);
    let inbox: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
    let received = Rc::new(std::cell::Cell::new(0u64));
    let h_keys = {
        let inbox = Rc::clone(&inbox);
        let received = Rc::clone(&received);
        w.am.register(move |_, msg| {
            let inbox = Rc::clone(&inbox);
            let received = Rc::clone(&received);
            Box::pin(async move {
                for chunk in msg.args.chunks_exact(8) {
                    inbox
                        .borrow_mut()
                        .push(f64::from_le_bytes(chunk.try_into().expect("f64")));
                    received.set(received.get() + 1);
                }
            })
        })
    };
    w.coll.barrier().await;

    // Local keys (global stream sliced by the partition).
    let mut keys: Vec<f64> = (key0..key0 + kpp).map(key_at).collect();
    w.work((kpp as u64 * 2) * WORK_SCALE).await;

    // --- splitter selection -------------------------------------------------
    {
        let mut sorted = keys.clone();
        sorted.sort_by(f64::total_cmp);
        w.work((kpp as u64 * 8) * WORK_SCALE).await; // local sample sort pass
        let picks: Vec<f64> = (0..SAMPLES_PER_PROC)
            .map(|i| sorted[(i + 1) * sorted.len() / (SAMPLES_PER_PROC + 1)])
            .collect();
        w.p.write_f64_slice(my_samples, &picks);
    }
    if me == 0 {
        let picks = w.p.read_f64_slice(my_samples, SAMPLES_PER_PROC);
        w.p.write_f64_slice(sample_area, &picks);
    } else {
        w.sc.store(
            my_samples,
            GlobalPtr {
                proc: ProcId(0),
                addr: sample_area.index((me * SAMPLES_PER_PROC) as u64, 8),
            },
            (SAMPLES_PER_PROC * 8) as u32,
        )
        .await;
    }
    w.sc.all_store_sync(&w.coll).await;
    if me == 0 && n > 1 {
        let mut all = w.p.read_f64_slice(sample_area, n * SAMPLES_PER_PROC);
        all.sort_by(f64::total_cmp);
        let splitters: Vec<f64> = (1..n).map(|i| all[i * all.len() / n]).collect();
        w.p.write_f64_slice(splitters_area, &splitters);
        w.work(((n * SAMPLES_PER_PROC) as u64 * 10) * WORK_SCALE)
            .await;
    }
    if n > 1 {
        w.coll
            .broadcast(ProcId(0), splitters_area, ((n - 1) * 8) as u32)
            .await;
    }
    let splitters = w.p.read_f64_slice(splitters_area, n - 1);
    let bucket_of =
        move |k: f64, splitters: &[f64]| -> usize { splitters.partition_point(|&s| s <= k) };

    // --- key exchange --------------------------------------------------------
    let mut routed = 0u64;

    if bulk {
        // Sampleb: sort locally, then one bulk transfer per destination.
        // All sorted keys are staged once; bulk transfers read stable
        // slices of this buffer (large puts are zero-copy until serviced).
        keys.sort_by(f64::total_cmp);
        w.work((kpp as u64 * 16) * WORK_SCALE).await;
        w.p.write_f64_slice(send_buf, &keys);
        // Contiguous bucket runs out of the sorted key array.
        let mut start = 0usize;
        for dest in 0..n {
            let end = if dest + 1 < n {
                keys.partition_point(|&k| k < splitters[dest])
            } else {
                keys.len()
            };
            let run = &keys[start..end];
            assert!(
                run.len() * 8 <= cap,
                "bucket overflow: {} keys for capacity {}",
                run.len(),
                cap / 8
            );
            if dest == me {
                inbox.borrow_mut().extend_from_slice(run);
                received.set(received.get() + run.len() as u64);
            } else {
                let count_cell = counts_out.index(dest as u64, 8);
                w.p.write_u64(count_cell, run.len() as u64);
                w.sc.store(
                    count_cell,
                    GlobalPtr {
                        proc: ProcId(dest as u32),
                        addr: counts_area.index(me as u64, 8),
                    },
                    8,
                )
                .await;
                if !run.is_empty() {
                    w.sc.store(
                        send_buf.index(start as u64, 8),
                        GlobalPtr {
                            proc: ProcId(dest as u32),
                            addr: recv_area.index((dest_slot(me) * cap) as u64, 1),
                        },
                        (run.len() * 8) as u32,
                    )
                    .await;
                }
            }
            routed += run.len() as u64;
            start = end;
        }
        w.sc.all_store_sync(&w.coll).await;
        // Assemble from the per-source slots.
        for src in 0..n {
            if src == me {
                continue;
            }
            let cnt = w.p.read_u64(counts_area.index(src as u64, 8)) as usize;
            if cnt > 0 {
                let vals =
                    w.p.read_f64_slice(recv_area.index((dest_slot(src) * cap) as u64, 1), cnt);
                inbox.borrow_mut().extend_from_slice(&vals);
                received.set(received.get() + cnt as u64);
            }
        }
        let _ = routed;
    } else {
        // Sample: two keys per active message.
        let mut pending: Vec<Vec<f64>> = vec![Vec::new(); n];
        for &k in &keys {
            let dest = bucket_of(k, &splitters);
            routed += 1;
            if dest == me {
                inbox.borrow_mut().push(k);
                received.set(received.get() + 1);
                continue;
            }
            pending[dest].push(k);
            if pending[dest].len() == 2 {
                let mut args = [0u8; 16];
                args[0..8].copy_from_slice(&pending[dest][0].to_le_bytes());
                args[8..16].copy_from_slice(&pending[dest][1].to_le_bytes());
                w.am.request(ProcId(dest as u32), h_keys, &args).await;
                pending[dest].clear();
                // Service arrivals now and then to bound queue growth.
                w.am.poll().await;
            }
        }
        for (dest, rest) in pending.into_iter().enumerate() {
            if !rest.is_empty() {
                let mut args = Vec::with_capacity(rest.len() * 8);
                for k in rest {
                    args.extend_from_slice(&k.to_le_bytes());
                }
                w.am.request(ProcId(dest as u32), h_keys, &args).await;
            }
        }
        // Global completion: routed keys everywhere == received keys
        // everywhere.
        loop {
            let sent = w.coll.allreduce_sum(routed as f64).await;
            let recv = w.coll.allreduce_sum(received.get() as f64).await;
            if sent == recv {
                break;
            }
            // Drain a batch before the next (expensive) global check.
            for _ in 0..16 {
                w.am.poll().await;
            }
        }
    }

    // --- local sort and verification -----------------------------------------
    let mut bucket = inbox.borrow().clone();
    bucket.sort_by(f64::total_cmp);
    w.work(((bucket.len().max(1) as u64) * 20) * WORK_SCALE)
        .await;
    assert!(bucket.windows(2).all(|p| p[0] <= p[1]), "bucket not sorted");
    // Boundary invariant: my smallest key must be >= my left splitter, my
    // largest < my right splitter.
    if me > 0 {
        if let Some(&first) = bucket.first() {
            assert!(first >= splitters[me - 1], "bucket boundary violated");
        }
    }
    if me + 1 < n {
        if let Some(&last) = bucket.last() {
            assert!(last < splitters[me], "bucket boundary violated");
        }
    }
    w.coll.barrier().await;
    // Checksum: global key mass is conserved by routing.
    bucket.iter().fold(0.0, |acc, &k| fold_checksum(acc, k))
}

/// Slot index used for the per-source staging area (symmetric on both
/// sides of a transfer).
fn dest_slot(src: usize) -> usize {
    src
}
