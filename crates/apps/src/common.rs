//! Shared machinery for the application suite.
//!
//! The paper's simulator is execution-driven: applications really run and
//! their data really moves through the simulated cluster; only *time* is
//! modelled. Here the compute intervals between communication events are
//! charged from deterministic operation counts (`World::work`) instead of
//! the POWER2 real-time clock — the substitution that keeps every run
//! bit-reproducible (see DESIGN.md).

use mproxy::Proc;
use mproxy_am::{Am, Coll};
use mproxy_crl::Crl;
use mproxy_splitc::SplitC;

/// The communication stack handed to every application process, built in
/// a fixed order so flag/queue allocation is SPMD-deterministic.
#[derive(Clone)]
pub struct World {
    /// The user process.
    pub p: Proc,
    /// Active-message endpoint.
    pub am: Am,
    /// Split-C context.
    pub sc: SplitC,
    /// CRL region DSM.
    pub crl: Crl,
    /// Collectives (polling the AM endpoint while waiting).
    pub coll: Coll,
}

impl World {
    /// Builds the full stack for one process.
    #[must_use]
    pub fn new(p: &Proc) -> World {
        let am = Am::new(p);
        let sc = SplitC::new(p, &am);
        let crl = Crl::new(p, &am);
        let coll = Coll::new(p, Some(am.clone()));
        World {
            p: p.clone(),
            am,
            sc,
            crl,
            coll,
        }
    }

    /// Rank as usize.
    #[must_use]
    pub fn me(&self) -> usize {
        self.p.rank().0 as usize
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.p.nprocs()
    }

    /// Charges `units` of deterministic compute (one unit ≈ one inner-loop
    /// floating-point operation group; `ClusterSpec::work_unit_ns` each),
    /// polling the AM endpoint between 100 µs slices — the discipline CRL
    /// and Split-C programs follow so that coherence and request traffic
    /// is serviced even during long computation phases.
    pub async fn work(&self, units: u64) {
        let slice_units = 100_000 / self.p.work_unit_ns().max(1);
        let mut left = units;
        while left > slice_units {
            self.p.compute(slice_units).await;
            self.am.poll().await;
            left -= slice_units;
        }
        self.p.compute(left).await;
    }
}

/// Problem-size class for an application run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppSize {
    /// Minimal — unit tests.
    Tiny,
    /// Default — the benchmark harness (minutes for the full sweep).
    Small,
    /// Closest to the paper's Table 5 inputs (slow).
    Full,
}

/// A deterministic 64-bit LCG (same stream on every platform and design
/// point).
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Seeds the generator.
    #[must_use]
    pub fn new(seed: u64) -> Lcg {
        Lcg {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.state
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in [0, n).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Splits `total` items over `n` ranks: returns rank `r`'s (start, count).
#[must_use]
pub fn partition(total: usize, n: usize, r: usize) -> (usize, usize) {
    let base = total / n;
    let extra = total % n;
    let count = base + usize::from(r < extra);
    let start = r * base + r.min(extra);
    (start, count)
}

/// Folds a float into a stable checksum accumulator.
#[must_use]
pub fn fold_checksum(acc: f64, x: f64) -> f64 {
    // Quantize so the checksum is robust to the (deterministic but
    // order-fixed) float arithmetic while still catching data corruption.
    acc + (x * 1024.0).round() / 1024.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_everything_exactly_once() {
        for total in [0usize, 1, 7, 16, 100] {
            for n in [1usize, 2, 3, 5, 16] {
                let mut covered = 0;
                let mut next = 0;
                for r in 0..n {
                    let (s, c) = partition(total, n, r);
                    assert_eq!(s, next, "total={total} n={n} r={r}");
                    next = s + c;
                    covered += c;
                }
                assert_eq!(covered, total);
            }
        }
    }

    #[test]
    fn lcg_is_deterministic_and_uniform_ish() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Lcg::new(7);
        let mean: f64 = (0..10_000).map(|_| c.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn checksum_fold_is_order_stable_for_quantized_values() {
        let xs = [1.5, -2.25, 3.0625];
        let a = xs.iter().fold(0.0, |acc, &x| fold_checksum(acc, x));
        assert_eq!(a, 1.5 - 2.25 + 3.0625);
    }
}
