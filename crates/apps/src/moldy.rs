//! Moldy: Monte-Carlo molecular dynamics (native RMA).
//!
//! "The main communication operation in the program is a broadcast of
//! data in between iterations to combine and concatenate vectors. The
//! program uses PUT operations to broadcast the data." Each rank owns a
//! segment of the replicated position vector; after locally displacing its
//! molecules it PUTs the segment into every peer's replica (large
//! messages — Moldy is bandwidth-bound, Table 6: ~6.5 KB average).

use crate::common::{fold_checksum, partition, AppSize, Lcg, World};

/// Compute-per-communication calibration: matches the per-processor
/// message rates of Table 6 at the Small problem size (see DESIGN.md on
/// the deterministic compute model).
const WORK_SCALE: u64 = 400;

struct Config {
    molecules: usize,
    iters: usize,
}

fn config(size: AppSize) -> Config {
    match size {
        AppSize::Tiny => Config {
            molecules: 64,
            iters: 2,
        },
        AppSize::Small => Config {
            molecules: 512,
            iters: 4,
        },
        AppSize::Full => Config {
            molecules: 4304,
            iters: 10,
        },
    }
}

/// Runs Moldy; returns this rank's checksum contribution.
pub async fn run(w: &World, size: AppSize) -> f64 {
    let cfg = config(size);
    let n = w.n();
    let me = w.me();
    let mols = cfg.molecules;
    // Replicated position vector, 3 doubles per molecule, identical
    // initialisation on every rank.
    let pos = w.p.alloc(mols as u64 * 24);
    {
        let mut rng = Lcg::new(7);
        for i in 0..mols {
            for d in 0..3u64 {
                w.p.write_f64(pos.index(i as u64 * 3 + d, 8), rng.next_f64() * 10.0);
            }
        }
    }
    let (start, count) = partition(mols, n, me);
    let seg_flag = w.p.new_flag();
    w.coll.barrier().await;

    let mut energy = 0.0;
    for it in 0..cfg.iters {
        // Monte-Carlo displacement of the local segment. Each draw is
        // derived from the *global* molecule index so the trajectory is
        // independent of how molecules are partitioned over ranks.
        for i in start..start + count {
            for d in 0..3u64 {
                let mut rng = Lcg::new((it as u64) << 40 | (i as u64) << 8 | d);
                let a = pos.index(i as u64 * 3 + d, 8);
                let x = w.p.read_f64(a);
                w.p.write_f64(a, x + (rng.next_f64() - 0.5) * 0.1);
            }
        }
        w.work((count as u64 * 60) * WORK_SCALE).await;
        // Broadcast the updated segment with PUTs (combine/concatenate).
        if count > 0 {
            for r in 0..n {
                if r == me {
                    continue;
                }
                let peer = mproxy::ProcId(r as u32);
                let rflag = w.p.remote_flag(peer, seg_flag.id());
                w.p.put(
                    pos.index(start as u64 * 3, 8),
                    peer.into(),
                    pos.index(start as u64 * 3, 8),
                    count as u32 * 24,
                    None,
                    Some(rflag),
                )
                .await
                .expect("moldy segment put failed");
            }
        }
        // Wait for every peer's segment of this iteration.
        let senders = (0..n)
            .filter(|&r| r != me && partition(mols, n, r).1 > 0)
            .count();
        w.p.wait_flag(&seg_flag, ((it + 1) * senders) as u64).await;
        // Energy over the full (replicated) vector: own molecules against
        // a strided sample of all molecules.
        let mut e = 0.0;
        let stride = (mols / 16).max(1);
        for i in start..start + count {
            let xi = w.p.read_f64(pos.index(i as u64 * 3, 8));
            let yi = w.p.read_f64(pos.index(i as u64 * 3 + 1, 8));
            let zi = w.p.read_f64(pos.index(i as u64 * 3 + 2, 8));
            let mut j = 0;
            while j < mols {
                if j != i {
                    let xj = w.p.read_f64(pos.index(j as u64 * 3, 8));
                    let yj = w.p.read_f64(pos.index(j as u64 * 3 + 1, 8));
                    let zj = w.p.read_f64(pos.index(j as u64 * 3 + 2, 8));
                    let d2 = (xi - xj).powi(2) + (yi - yj).powi(2) + (zi - zj).powi(2) + 1e-6;
                    e += 1.0 / d2.sqrt();
                }
                j += stride;
            }
        }
        w.work(((count * (mols / stride).max(1)) as u64 * 8) * WORK_SCALE)
            .await;
        energy = w.coll.allreduce_sum(e).await;
        // Nobody may overwrite replicas until everyone finished reading.
        w.coll.barrier().await;
    }
    // Identical on every rank; contribute 1/n so the global sum equals it.
    fold_checksum(0.0, energy) / n as f64
}
