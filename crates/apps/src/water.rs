//! Water: "n-squared" molecular dynamics (CRL, adapted from SPLASH-2).
//!
//! Each rank homes one region holding its molecules. Every iteration each
//! rank reads every other rank's region (coherently cached for the whole
//! force phase), computes O(local × total) pair forces, then rewrites its
//! own region — invalidating the cached copies and regenerating the
//! read-mostly coherence traffic the paper measures.

use mproxy::ProcId;
use mproxy_crl::RegionId;

use crate::common::{fold_checksum, partition, AppSize, Lcg, World};

/// Compute-per-communication calibration: matches the per-processor
/// message rates of Table 6 at the Small problem size (see DESIGN.md on
/// the deterministic compute model).
const WORK_SCALE: u64 = 4;

struct Config {
    molecules: usize,
    iters: usize,
}

fn config(size: AppSize) -> Config {
    match size {
        AppSize::Tiny => Config {
            molecules: 32,
            iters: 2,
        },
        AppSize::Small => Config {
            molecules: 128,
            iters: 3,
        },
        AppSize::Full => Config {
            molecules: 512,
            iters: 3,
        },
    }
}

const MOL_BYTES: u64 = 32; // x, y, z, mass

/// Runs Water; returns this rank's checksum contribution.
pub async fn run(w: &World, size: AppSize) -> f64 {
    let cfg = config(size);
    let n = w.n();
    let me = w.me();
    let (_, my_count) = partition(cfg.molecules, n, me);
    let max_count = partition(cfg.molecules, n, 0).1;

    // Every rank creates one region sized for the largest share.
    let my_rid = w.crl.create((max_count as u64 * MOL_BYTES) as u32);
    debug_assert_eq!(my_rid.idx, 0);
    let regions: Vec<_> = (0..n)
        .map(|r| {
            w.crl.map(
                RegionId {
                    home: ProcId(r as u32),
                    idx: 0,
                },
                (max_count as u64 * MOL_BYTES) as u32,
            )
        })
        .collect();

    // Initialise own molecules (same global stream sliced per rank).
    {
        let (start, _) = partition(cfg.molecules, n, me);
        let mut rng = Lcg::new(11);
        let mut all = Vec::with_capacity(cfg.molecules * 4);
        for _ in 0..cfg.molecules {
            all.push(rng.next_f64() * 8.0);
            all.push(rng.next_f64() * 8.0);
            all.push(rng.next_f64() * 8.0);
            all.push(1.0 + rng.next_f64());
        }
        w.crl.start_write(&regions[me]).await;
        for (slot, i) in (start..start + my_count).enumerate() {
            w.p.write_f64_slice(
                regions[me].addr().index(slot as u64 * 4, 8),
                &all[i * 4..i * 4 + 4],
            );
        }
        w.crl.end_write(&regions[me]).await;
    }
    w.coll.barrier().await;

    let mut energy = 0.0;
    for _it in 0..cfg.iters {
        // Snapshot every rank's molecules (coherent reads, cached).
        let mut snapshot: Vec<f64> = Vec::with_capacity(n * max_count * 4);
        for (r, rgn) in regions.iter().enumerate() {
            let count = partition(cfg.molecules, n, r).1;
            w.crl.start_read(rgn).await;
            snapshot.extend(w.p.read_f64_slice(rgn.addr(), count * 4));
            w.crl.end_read(rgn).await;
            snapshot.resize((r + 1) * max_count * 4, 0.0);
        }
        // Pair forces on own molecules against everything (real O(n²)).
        let my_base = me * max_count * 4;
        let mut forces = vec![0.0f64; my_count * 3];
        let mut e = 0.0;
        for i in 0..my_count {
            let (xi, yi, zi) = (
                snapshot[my_base + i * 4],
                snapshot[my_base + i * 4 + 1],
                snapshot[my_base + i * 4 + 2],
            );
            for r in 0..n {
                let count = partition(cfg.molecules, n, r).1;
                for j in 0..count {
                    if r == me && j == i {
                        continue;
                    }
                    let b = r * max_count * 4 + j * 4;
                    let (dx, dy, dz) =
                        (snapshot[b] - xi, snapshot[b + 1] - yi, snapshot[b + 2] - zi);
                    let d2 = dx * dx + dy * dy + dz * dz + 0.01;
                    let inv = snapshot[b + 3] / (d2 * d2.sqrt());
                    forces[i * 3] += dx * inv;
                    forces[i * 3 + 1] += dy * inv;
                    forces[i * 3 + 2] += dz * inv;
                    e += 0.5 / d2.sqrt();
                }
            }
        }
        w.work(((my_count * cfg.molecules) as u64 * 12) * WORK_SCALE)
            .await;
        // Everyone must finish reading before anyone rewrites.
        w.coll.barrier().await;
        w.crl.start_write(&regions[me]).await;
        for i in 0..my_count {
            for d in 0..3u64 {
                let a = regions[me].addr().index(i as u64 * 4 + d, 8);
                let x = w.p.read_f64(a);
                w.p.write_f64(a, x + 0.001 * forces[i * 3 + d as usize]);
            }
        }
        w.crl.end_write(&regions[me]).await;
        w.work((my_count as u64 * 15) * WORK_SCALE).await;
        energy = w.coll.allreduce_sum(e).await;
        w.coll.barrier().await;
    }
    fold_checksum(0.0, energy) / n as f64
}
