//! MM: blocked matrix multiplication (Split-C).
//!
//! `C = A·B` with the matrices split into a `g×g` grid of `b×b` blocks,
//! distributed cyclically. Each owner of a `C` block fetches the needed
//! `A` and `B` blocks with bulk gets and runs a real dgemm kernel —
//! bandwidth-and-latency-bound, like the paper's version (MM "is affected
//! by communication latency as well as bandwidth").

use mproxy::{Addr, ProcId};
use mproxy_splitc::GlobalPtr;

use crate::common::{fold_checksum, AppSize, World};

/// Compute-per-communication calibration: matches the per-processor
/// message rates of Table 6 at the Small problem size (see DESIGN.md on
/// the deterministic compute model).
const WORK_SCALE: u64 = 3;

struct Config {
    n: usize,
    block: usize,
}

fn config(size: AppSize) -> Config {
    match size {
        AppSize::Tiny => Config { n: 32, block: 8 },
        AppSize::Small => Config { n: 96, block: 12 },
        AppSize::Full => Config { n: 256, block: 32 },
    }
}

/// Deterministic matrix entries.
fn a_entry(i: usize, j: usize) -> f64 {
    ((i * 31 + j * 17) % 13) as f64 / 13.0 - 0.4
}
fn b_entry(i: usize, j: usize) -> f64 {
    ((i * 7 + j * 29) % 11) as f64 / 11.0 - 0.3
}

/// Reference multiply for validation at Tiny size.
#[cfg(test)]
pub(crate) fn reference(n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let a = a_entry(i, k);
            for j in 0..n {
                c[i * n + j] += a * b_entry(k, j);
            }
        }
    }
    c
}

struct Layout {
    g: usize,
    b: usize,
    nprocs: usize,

    a: Addr,
    b_mat: Addr,
    c: Addr,
}

impl Layout {
    fn owner(&self, bi: usize, bj: usize) -> usize {
        (bi * self.g + bj) % self.nprocs
    }
    fn slot(&self, bi: usize, bj: usize) -> u64 {
        ((bi * self.g + bj) / self.nprocs) as u64
    }
    fn block_f64s(&self) -> u64 {
        (self.b * self.b) as u64
    }
    fn addr_of(&self, base: Addr, bi: usize, bj: usize) -> Addr {
        base.index(self.slot(bi, bj) * self.block_f64s(), 8)
    }
}

/// Runs MM; returns this rank's checksum contribution.
pub async fn run(w: &World, size: AppSize) -> f64 {
    let cfg = config(size);
    run_inner(w, cfg.n, cfg.block, None).await
}

/// Sink used by the integration test to capture the computed C blocks.
pub(crate) type BlockSink = std::rc::Rc<std::cell::RefCell<Vec<(usize, usize, Vec<f64>)>>>;

/// Shared with the test below, which passes a sink for the full result.
pub(crate) async fn run_inner(w: &World, n: usize, b: usize, sink: Option<BlockSink>) -> f64 {
    assert_eq!(n % b, 0, "block size must divide the matrix");
    let g = n / b;
    let nprocs = w.n();
    let me = w.me();
    let blocks_total = g * g;
    let slots = blocks_total.div_ceil(nprocs);
    // (slots sizes the symmetric per-rank block arrays below)
    let block_bytes = (b * b * 8) as u64;

    let lay = Layout {
        g,
        b,
        nprocs,
        a: w.p.alloc(slots as u64 * block_bytes),
        b_mat: w.p.alloc(slots as u64 * block_bytes),
        c: w.p.alloc(slots as u64 * block_bytes),
    };
    // Two scratch blocks for fetched operands.
    let scr_a = w.p.alloc(block_bytes);
    let scr_b = w.p.alloc(block_bytes);

    // Owners initialise their blocks.
    for bi in 0..g {
        for bj in 0..g {
            if lay.owner(bi, bj) != me {
                continue;
            }
            let mut abuf = Vec::with_capacity(b * b);
            let mut bbuf = Vec::with_capacity(b * b);
            for r in 0..b {
                for c in 0..b {
                    abuf.push(a_entry(bi * b + r, bj * b + c));
                    bbuf.push(b_entry(bi * b + r, bj * b + c));
                }
            }
            w.p.write_f64_slice(lay.addr_of(lay.a, bi, bj), &abuf);
            w.p.write_f64_slice(lay.addr_of(lay.b_mat, bi, bj), &bbuf);
            w.p.write_f64_slice(lay.addr_of(lay.c, bi, bj), &vec![0.0; b * b]);
        }
    }
    w.coll.barrier().await;

    // For every C block we own: C(bi,bj) = Σ_k A(bi,k)·B(k,bj).
    let mut sum = 0.0;
    for bi in 0..g {
        for bj in 0..g {
            if lay.owner(bi, bj) != me {
                continue;
            }
            let mut acc = vec![0.0f64; b * b];
            for k in 0..g {
                let fetch = |owner: usize, addr: Addr, scratch: Addr| {
                    let w = w.clone();
                    async move {
                        if owner == w.me() {
                            let data = w.p.read_bytes(addr, block_bytes as u32);
                            w.p.write_bytes(scratch, &data);
                            w.work(((b * b) as u64 / 4) * WORK_SCALE).await;
                        } else {
                            w.sc.bulk_get(
                                GlobalPtr {
                                    proc: ProcId(owner as u32),
                                    addr,
                                },
                                scratch,
                                block_bytes as u32,
                            )
                            .await;
                        }
                    }
                };
                fetch(lay.owner(bi, k), lay.addr_of(lay.a, bi, k), scr_a).await;
                fetch(lay.owner(k, bj), lay.addr_of(lay.b_mat, k, bj), scr_b).await;
                let ab = w.p.read_f64_slice(scr_a, b * b);
                let bb = w.p.read_f64_slice(scr_b, b * b);
                for r in 0..b {
                    for kk in 0..b {
                        let av = ab[r * b + kk];
                        for c in 0..b {
                            acc[r * b + c] += av * bb[kk * b + c];
                        }
                    }
                }
                w.work(((b * b * b) as u64 * 2) * WORK_SCALE).await;
            }
            w.p.write_f64_slice(lay.addr_of(lay.c, bi, bj), &acc);
            for v in &acc {
                sum = fold_checksum(sum, *v);
            }
            if let Some(sink) = &sink {
                sink.borrow_mut().push((bi, bj, acc));
            }
        }
    }
    w.coll.barrier().await;
    sum
}
