//! FFT: 1-D Fast Fourier Transform "with bulk transfers to exchange data"
//! (Split-C).
//!
//! The classic four-step algorithm on an `R×C` view of the `n = R·C`
//! points: transpose (bulk all-to-all), column FFTs, twiddle, transpose
//! back, row FFTs. The two transposes are the bandwidth-bound all-to-all
//! exchanges that make FFT sensitive to peak bandwidth in Figure 8.
//!
//! The butterflies are real: the test suite checks the output against a
//! direct DFT.

use mproxy::{Addr, ProcId};
use mproxy_splitc::GlobalPtr;

use crate::common::{fold_checksum, AppSize, World};

/// Compute-per-communication calibration: matches the per-processor
/// message rates of Table 6 at the Small problem size (see DESIGN.md on
/// the deterministic compute model).
const WORK_SCALE: u64 = 4;

fn side(size: AppSize) -> usize {
    match size {
        AppSize::Tiny => 8,    // n = 64
        AppSize::Small => 128, // n = 16384
        AppSize::Full => 256,  // n = 65536
    }
}

/// In-place iterative radix-2 FFT over interleaved (re, im) pairs.
pub(crate) fn fft_inplace(buf: &mut [f64]) {
    let n = buf.len() / 2;
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            buf.swap(2 * i, 2 * j);
            buf.swap(2 * i + 1, 2 * j + 1);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for j in 0..len / 2 {
                let a = 2 * (i + j);
                let b = 2 * (i + j + len / 2);
                let (xr, xi) = (buf[a], buf[a + 1]);
                let (yr, yi) = (buf[b] * cr - buf[b + 1] * ci, buf[b] * ci + buf[b + 1] * cr);
                buf[a] = xr + yr;
                buf[a + 1] = xi + yi;
                buf[b] = xr - yr;
                buf[b + 1] = xi - yi;
                let t = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = t;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Deterministic input signal.
pub(crate) fn input_sample(j: usize, n: usize) -> (f64, f64) {
    let t = j as f64 / n as f64;
    (
        (2.0 * std::f64::consts::PI * 3.0 * t).sin()
            + 0.5 * (2.0 * std::f64::consts::PI * 7.0 * t).cos(),
        0.25 * (2.0 * std::f64::consts::PI * 5.0 * t).sin(),
    )
}

/// Transposes the locally owned `lr × side` stripe (rows starting at
/// `row0` of matrix `a`) into every peer's staging area, then rebuilds the
/// transposed stripe from the staging slots.
async fn transpose(w: &World, a: Addr, stage: Addr, lr: usize, side_len: usize, slot_bytes: u64) {
    let n = w.n();
    let me = w.me();
    let send = w.p.alloc(slot_bytes); // packing buffer per destination
    for d in 0..n {
        let dc0 = d * lr; // destination's first row in the transposed view
                          // Pack block: for each of the destination's rows c (columns here),
                          // our rows r: element a[r][c].
        let mut block = Vec::with_capacity(lr * lr * 2);
        for c in dc0..dc0 + lr {
            for r in 0..lr {
                let off = ((r * side_len + c) * 2) as u64;
                block.push(w.p.read_f64(a.index(off, 8)));
                block.push(w.p.read_f64(a.index(off + 1, 8)));
            }
        }
        w.work(((lr * lr) as u64 * 3) * WORK_SCALE).await;
        if d == me {
            w.p.write_f64_slice(stage.index(me as u64 * slot_bytes, 1), &block);
        } else {
            w.p.write_f64_slice(send, &block);
            w.sc.bulk_put(
                send,
                GlobalPtr {
                    proc: ProcId(d as u32),
                    addr: stage.index(me as u64 * slot_bytes, 1),
                },
                (block.len() * 8) as u32,
            )
            .await;
        }
    }
    w.coll.barrier().await;
    // Unpack: source s's slot holds, for each of our transposed rows c,
    // the elements from s's original rows.
    for s in 0..n {
        let sr0 = s * lr; // source's original rows = our new columns
        let slot = stage.index(s as u64 * slot_bytes, 1);
        for (ci, _c) in (0..lr).enumerate() {
            for (ri, r) in (sr0..sr0 + lr).enumerate() {
                let v_off = ((ci * lr + ri) * 2) as u64;
                let dst_off = ((ci * side_len + r) * 2) as u64;
                let re = w.p.read_f64(slot.index(v_off, 8));
                let im = w.p.read_f64(slot.index(v_off + 1, 8));
                w.p.write_f64(a.index(dst_off, 8), re);
                w.p.write_f64(a.index(dst_off + 1, 8), im);
            }
        }
    }
    w.work(((lr * side_len) as u64 * 3) * WORK_SCALE).await;
    w.coll.barrier().await;
}

/// Runs FFT; returns this rank's checksum contribution. The output ends up
/// distributed in transposed read-out order (standard four-step layout).
pub async fn run(w: &World, size: AppSize) -> f64 {
    run_inner(w, side(size), None).await
}

/// Sink used by the integration test to capture each rank's raw output.
pub(crate) type OutputSink = std::rc::Rc<std::cell::RefCell<Vec<(usize, Vec<f64>)>>>;

/// Shared with the integration test, which passes a sink for the raw
/// local output.
pub(crate) async fn run_inner(w: &World, r_side: usize, sink: Option<OutputSink>) -> f64 {
    let n_procs = w.n();
    let side_len = r_side;
    assert_eq!(
        side_len % n_procs,
        0,
        "side {side_len} must be divisible by {n_procs} ranks"
    );
    let lr = side_len / n_procs; // local rows
    let total = side_len * side_len;
    let row0 = w.me() * lr;

    // Local stripe: lr rows × side columns of complex, interleaved.
    let a = w.p.alloc((lr * side_len * 16) as u64);
    let slot_bytes = (lr * lr * 16) as u64;
    let stage = w.p.alloc(slot_bytes * n_procs as u64);
    for r in 0..lr {
        for c in 0..side_len {
            let j = (row0 + r) * side_len + c; // row-major global index
            let (re, im) = input_sample(j, total);
            let off = ((r * side_len + c) * 2) as u64;
            w.p.write_f64(a.index(off, 8), re);
            w.p.write_f64(a.index(off + 1, 8), im);
        }
    }
    w.coll.barrier().await;

    // Step 1: transpose so columns become local rows.
    transpose(w, a, stage, lr, side_len, slot_bytes).await;
    // Step 2: FFT each (former column), now a local row of length side.
    let butterflies = (side_len / 2 * side_len.trailing_zeros() as usize) as u64;
    for r in 0..lr {
        let mut row =
            w.p.read_f64_slice(a.index((r * side_len * 2) as u64, 8), side_len * 2);
        fft_inplace(&mut row);
        w.p.write_f64_slice(a.index((r * side_len * 2) as u64, 8), &row);
        w.work((butterflies * 10) * WORK_SCALE).await;
    }
    // Step 3: twiddle factors w_n^{r·c}; our local row r is global column
    // (row0 + r) of the original matrix.
    for r in 0..lr {
        let gr = row0 + r;
        for c in 0..side_len {
            let ang = -2.0 * std::f64::consts::PI * (gr * c) as f64 / total as f64;
            let (tw_r, tw_i) = (ang.cos(), ang.sin());
            let off = ((r * side_len + c) * 2) as u64;
            let (re, im) = (
                w.p.read_f64(a.index(off, 8)),
                w.p.read_f64(a.index(off + 1, 8)),
            );
            w.p.write_f64(a.index(off, 8), re * tw_r - im * tw_i);
            w.p.write_f64(a.index(off + 1, 8), re * tw_i + im * tw_r);
        }
    }
    w.work(((lr * side_len) as u64 * 6) * WORK_SCALE).await;
    w.coll.barrier().await;
    // Step 4: transpose back to original row distribution.
    transpose(w, a, stage, lr, side_len, slot_bytes).await;
    // Step 5: FFT each original row.
    for r in 0..lr {
        let mut row =
            w.p.read_f64_slice(a.index((r * side_len * 2) as u64, 8), side_len * 2);
        fft_inplace(&mut row);
        w.p.write_f64_slice(a.index((r * side_len * 2) as u64, 8), &row);
        w.work((butterflies * 10) * WORK_SCALE).await;
    }
    w.coll.barrier().await;

    // Local element (r, c) now holds X[c·R + (row0 + r)].
    let mut sum = 0.0;
    let local = w.p.read_f64_slice(a, lr * side_len * 2);
    for pair in local.chunks_exact(2) {
        sum = fold_checksum(sum, (pair[0] * pair[0] + pair[1] * pair[1]).sqrt());
    }
    if let Some(sink) = sink {
        sink.borrow_mut().push((row0, local));
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct_dft(input: &[(f64, f64)]) -> Vec<(f64, f64)> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc = (0.0, 0.0);
                for (j, &(re, im)) in input.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                    let (c, s) = (ang.cos(), ang.sin());
                    acc.0 += re * c - im * s;
                    acc.1 += re * s + im * c;
                }
                acc
            })
            .collect()
    }

    #[test]
    fn fft_kernel_matches_direct_dft() {
        let n = 32;
        let input: Vec<(f64, f64)> = (0..n).map(|j| input_sample(j, n)).collect();
        let mut buf: Vec<f64> = input.iter().flat_map(|&(r, i)| [r, i]).collect();
        fft_inplace(&mut buf);
        let expect = direct_dft(&input);
        for (k, e) in expect.iter().enumerate() {
            assert!(
                (buf[2 * k] - e.0).abs() < 1e-9 && (buf[2 * k + 1] - e.1).abs() < 1e-9,
                "bin {k}: got ({}, {}), want {:?}",
                buf[2 * k],
                buf[2 * k + 1],
                e
            );
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut buf = vec![0.0; 6];
        fft_inplace(&mut buf);
    }
}
