//! Placeholder library target; the runnable code lives in the example
//! binaries (`cargo run -p mproxy-examples --example quickstart`).
