//! A message-passing ring pipeline on the miniature MPI layer: each stage
//! transforms a record and forwards it, with a large bulk hand-off at the
//! end — eager and rendezvous protocols in one program, compared across
//! two architectures.
//!
//! Run: `cargo run --release -p mproxy-examples --example ring_pipeline`

use mproxy::{Cluster, ClusterSpec, ProcId};
use mproxy_am::Am;
use mproxy_des::Simulation;
use mproxy_model::{HW1, MP1};
use mproxy_mpi::Mpi;

fn main() {
    for d in [HW1, MP1] {
        let sim = Simulation::new();
        let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(d, 4, 1)).expect("spec");
        cluster.spawn_spmd(|p| async move {
            let am = Am::new(&p);
            let mpi = Mpi::new(&p, &am);
            let n = p.nprocs() as u32;
            let me = p.rank().0;
            let next = ProcId((me + 1) % n);
            let small = p.alloc(64);
            let big = p.alloc(8192);
            p.ctx().yield_now().await;

            if me == 0 {
                // Inject 16 records, each a counter the ring increments.
                for i in 0..16u64 {
                    p.write_u64(small, i * 100);
                    mpi.send(next, 1, small, 8).await;
                }
                // Collect them after a full loop.
                let mut total = 0;
                for _ in 0..16 {
                    let _ = mpi.recv(None, Some(1), small, 64).await;
                    total += p.read_u64(small);
                }
                // Each record gained (n-1) increments.
                assert_eq!(total, (0..16).map(|i| i * 100).sum::<u64>() + 16 * u64::from(n - 1));
                // Finish with one bulk rendezvous transfer around the ring.
                for i in 0..1024u64 {
                    p.write_u64(big.index(i, 8), i);
                }
                mpi.send(next, 2, big, 8192).await;
                let _ = mpi.recv(None, Some(2), big, 8192).await;
                assert_eq!(p.read_u64(big.index(1023, 8)), 1023);
                println!(
                    "{}: ring of {n} done at {:.0} us ({:?})",
                    p.design().name,
                    p.now().as_us(),
                    mpi.counts()
                );
            } else {
                for _ in 0..16 {
                    let _ = mpi.recv(None, Some(1), small, 64).await;
                    p.write_u64(small, p.read_u64(small) + 1);
                    mpi.send(next, 1, small, 8).await;
                }
                let _ = mpi.recv(None, Some(2), big, 8192).await;
                mpi.send(next, 2, big, 8192).await;
            }
        });
        assert!(cluster.run(&sim).completed_cleanly());
    }
}
