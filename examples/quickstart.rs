//! Quickstart: a two-node SMP cluster with message-proxy communication.
//!
//! Demonstrates the Section 3 primitives — PUT, GET, ENQ with lsync/rsync
//! completion flags — and protection: an address space that was never
//! granted faults the access.
//!
//! Run: `cargo run -p mproxy-examples --example quickstart`

use mproxy::{Asid, Cluster, ClusterSpec, CommError, ProcId, RemoteQueue};
use mproxy_des::Simulation;
use mproxy_model::MP1;

fn main() {
    let sim = Simulation::new();
    let mut spec = ClusterSpec::new(MP1, 2, 1);
    spec.allow_all = false; // protection on: explicit grants only
    let cluster = Cluster::new(&sim.ctx(), spec).expect("valid spec");
    cluster.grant(ProcId(0), Asid(1)); // rank 0 may touch rank 1's space

    cluster.spawn_spmd(|p| async move {
        let buf = p.alloc(64);
        let q = p.new_queue();
        let flag = p.new_flag();
        p.ctx().yield_now().await; // let every rank finish setup

        if p.rank() == ProcId(0) {
            // PUT a word into rank 1's space and wait for the ack.
            p.write_u64(buf, 0xC0FFEE);
            p.put(buf, Asid(1), buf, 8, Some(&flag), None)
                .await
                .unwrap();
            p.wait_flag(&flag, 1).await;
            println!("[{}us] PUT acknowledged", p.now().as_us());

            // GET it back into a scratch slot.
            p.get(buf.offset(8), Asid(1), buf, 8, Some(&flag), None)
                .await
                .unwrap();
            p.wait_flag(&flag, 2).await;
            assert_eq!(p.read_u64(buf.offset(8)), 0xC0FFEE);
            println!("[{}us] GET returned the word", p.now().as_us());

            // ENQ a message into rank 1's queue.
            p.write_bytes(buf.offset(16), b"hello, proxy!");
            p.enq(
                buf.offset(16),
                RemoteQueue {
                    proc: ProcId(1),
                    rq: q,
                },
                13,
                Some(&flag),
                None,
            )
            .await
            .unwrap();
            p.wait_flag(&flag, 3).await;

            // Protection: rank 0 was never granted asid 0 -> asid 0 is
            // itself; try asid 1 from... demonstrate a denied access by
            // revoking semantics on a third space instead: no rank 2
            // exists, so target rank 1 from a hostile angle:
        } else {
            // Rank 1: wait for the queued message.
            let msg = p.rq_recv(q).await.expect("queue open");
            println!(
                "[{}us] rank 1 dequeued {:?}",
                p.now().as_us(),
                std::str::from_utf8(&msg).unwrap()
            );
            // Rank 1 was granted nothing: its PUT to rank 0 must fault.
            let denied = p.put(buf, Asid(0), buf, 8, None, None).await;
            assert!(matches!(denied, Err(CommError::PermissionDenied { .. })));
            println!("[{}us] rank 1's un-granted PUT was denied", p.now().as_us());
        }
    });
    let report = cluster.run(&sim);
    assert!(report.completed_cleanly());
    println!("done at {} ({} events)", sim.now(), report.events);
}
