//! A domain scenario: distributed sample sort on an SMP cluster, compared
//! across protected-communication architectures — the workload class the
//! paper's introduction motivates (fine-grained key exchange stresses
//! small-message latency and compute-processor overhead).
//!
//! Run: `cargo run --release -p mproxy-examples --example parallel_sort`

use mproxy_apps::{run_app_flat, AppId, AppSize};
use mproxy_model::ALL_DESIGN_POINTS;

fn main() {
    println!("Sample sort, 8192 keys, 8 processors:\n");
    println!(
        "{:<6} {:>12} {:>12} {:>10} {:>12}",
        "point", "time (us)", "vs HW1", "ops", "proxy util"
    );
    let mut hw1 = 0.0;
    for d in ALL_DESIGN_POINTS {
        let r = run_app_flat(AppId::Sample, d, 8, AppSize::Small);
        if d.name == "HW1" {
            hw1 = r.elapsed_us;
        }
        let rel = if hw1 > 0.0 { r.elapsed_us / hw1 } else { 1.0 };
        println!(
            "{:<6} {:>12.0} {:>11.2}x {:>10} {:>11.1}%",
            d.name,
            r.elapsed_us,
            rel,
            r.traffic.total_ops,
            r.traffic.interface_utilization * 100.0
        );
    }
    println!("\nThe bulk-transfer variant (Sampleb) flips the ordering for the");
    println!("bandwidth-limited points:");
    for d in ALL_DESIGN_POINTS {
        let r = run_app_flat(AppId::Sampleb, d, 8, AppSize::Small);
        println!("{:<6} {:>12.0} us", d.name, r.elapsed_us);
    }
}
