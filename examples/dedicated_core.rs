//! The message-proxy architecture on real threads: a dedicated polling
//! proxy per node, lock-free SPSC command queues, protected RMA — the
//! 1997 design that became the DPDK/SPDK/seastar recipe.
//!
//! Run: `cargo run --release -p mproxy-examples --example dedicated_core`

use std::time::Instant;

use mproxy_rt::{FlagId, RqId, RtClusterBuilder};

fn main() {
    let mut b = RtClusterBuilder::new(2);
    let p0 = b.add_process(0, 1 << 16);
    let p1 = b.add_process(1, 1 << 16);
    let (cluster, mut eps) = b.start();
    let e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();
    println!("two nodes up, proxy threads polling (asids {p0}, {p1})");

    // Measure acked-PUT round trips through the real proxies.
    e0.seg().write_u64(0, 1);
    let rounds = 10_000u64;
    let t = Instant::now();
    for i in 1..=rounds {
        e0.put(0, p1, 64, 8, Some(FlagId(0)), None);
        e0.wait_flag(FlagId(0), i);
    }
    let per_op = t.elapsed().as_nanos() as f64 / rounds as f64;
    println!("acked 8-byte PUT: {per_op:.0} ns/round-trip over {rounds} rounds");

    // Remote queues: ENQ from node 0, dequeue at node 1.
    e0.seg().write(128, b"via the proxy");
    e0.enq(128, p1, RqId(0), 13, Some(FlagId(1)), None);
    e0.wait_flag(FlagId(1), 1);
    let msg = e1.rq_try_recv(RqId(0)).expect("delivered");
    println!("enq delivered: {:?}", std::str::from_utf8(&msg).unwrap());

    // Protection: restrict, observe the fault, grant, retry.
    cluster.restrict();
    e0.put(0, p1, 0, 8, None, Some(FlagId(2)));
    while e0.faults() == 0 {
        std::hint::spin_loop();
    }
    println!(
        "un-granted PUT faulted at the proxy (faults = {})",
        e0.faults()
    );
    cluster.grant(p0, p1);
    e0.put(0, p1, 0, 8, None, Some(FlagId(2)));
    e1.wait_flag(FlagId(2), 1);
    println!("after grant, the same PUT landed");

    println!(
        "proxy ops serviced: node0 = {}, node1 = {}",
        cluster.ops_serviced(0),
        cluster.ops_serviced(1)
    );
    drop((e0, e1));
    cluster.shutdown();
    println!("clean shutdown");
}
