//! Design-space exploration with the §4.1 analytic model: "the model can
//! be used to predict message proxy performance on other SMP cluster
//! architectures". Sweeps cache-miss latency and processor speed, prints
//! predicted one-word GET latency, and cross-checks two points against
//! the full simulator.
//!
//! Run: `cargo run --release -p mproxy-examples --example design_space`

use mproxy_model::{get_latency, DesignPoint, MachineParams, MP1};

fn main() {
    println!("Predicted one-word GET latency (us) = f(cache miss C, speed S):\n");
    print!("{:>8}", "C\\S");
    let speeds = [1.0, 2.0, 4.0, 8.0];
    for s in speeds {
        print!(" {s:>8.1}");
    }
    println!();
    for c in [1.0, 0.5, 0.25, 0.1] {
        print!("{c:>8.2}");
        for s in speeds {
            let m = MachineParams::G30.with_cache_miss(c).with_speed(s);
            print!(" {:>8.2}", get_latency().eval_uniform(&m));
        }
        println!();
    }

    println!("\nCross-check against the execution-driven simulator:");
    for (label, c, s) in [("slow SMP", 1.0, 1.0), ("fast SMP", 0.5, 4.0)] {
        let machine = MachineParams::G30.with_cache_miss(c).with_speed(s);
        let point = DesignPoint {
            name: "custom",
            machine,
            shared_miss_us: c,
            ..MP1
        };
        let sim = mproxy::micro::run_micro(point).get_us;
        let model = get_latency().eval_uniform(&machine);
        println!(
            "  {label}: model {model:>6.2} us, simulator {sim:>6.2} us ({:+.1}%)",
            100.0 * (sim - model) / model
        );
    }
}
